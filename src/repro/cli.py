"""Command-line interface: ``python -m repro`` / ``repro-bt``.

Subcommands
-----------
``list``
    Show the available experiment ids with descriptions.
``run <id> [--out DIR] [--jobs N] [--cache/--no-cache] [--force]``
    Execute one experiment end to end; prints its report and writes the
    numeric series to ``<DIR>/<id>.csv`` (default ``results/``).
``run all [--out DIR] [--jobs N] [--cache/--no-cache] [--force]``
    Execute every registered experiment -- across ``N`` worker processes
    when ``--jobs N`` is given -- and print a per-experiment telemetry
    summary (wall-clock, cache hit vs ran).  Unchanged experiments are
    replayed from the on-disk result cache (``<DIR>/.cache`` unless
    ``--cache-dir`` overrides it); ``--no-cache`` disables the cache and
    ``--force`` re-executes but refreshes the stored entries.  ``--profile``
    prints a solver/simulator/runner metrics table on stderr and ``--trace
    PATH`` writes a Chrome/Perfetto trace timeline of the fleet; neither
    changes the CSV/SVG outputs by a single byte.  ``--retries N``,
    ``--task-timeout SECONDS`` and ``--keep-going`` make long runs
    fault-tolerant: flaky experiments retry with exponential backoff,
    runaway drivers time out, and with ``--keep-going`` the run completes
    anyway, prints a failure table on stderr and exits 1 -- successful
    results are cached as they settle, so re-running resumes from the
    failures.
``run --scenario <spec.yaml> [--out DIR]``
    Run a declarative scenario document (see :mod:`repro.scenario` and
    docs/API.md for the schema) end to end without registering it: the
    spec is compiled to the richest backend set it supports, the report is
    printed and CSV/figures land in ``--out`` like any experiment.
``params``
    Print Table 1 with the paper's evaluation values.
``simulate <scenario.json|.yaml> [--json]``
    Run the flow-level simulator on a flat scenario description (see
    :func:`repro.scenario.sim_config_from_dict` for the schema) and print
    the summary.
``serve --scenario <spec.yaml> [--port N] [--duration S] [--journal PATH]``
    Run a scenario as a live swarm service (:mod:`repro.service`): events
    stream in over a line-JSON TCP protocol, virtual time tracks the wall
    clock (``--time-scale``), and every applied operation is journaled so
    the run can be replayed exactly.  Flags override the spec's
    ``service:`` section.
``replay <journal> [--json]``
    Re-execute a service journal deterministically as a batch run and
    verify the summary digest sealed into it -- the replayed summary is
    bit-identical to what the live run reported.

The experiment table in ``list`` and in ``run --help`` is generated from
the registry (:func:`repro.experiments.format_experiment_table`), so the
help can never drift from the experiments that exist.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.parameters import PAPER_PARAMETERS, format_table1
from repro.experiments import format_experiment_table, list_experiments

__all__ = ["main", "build_parser"]


@contextmanager
def _observing(args):
    """Run the enclosed command under ``--profile``/``--trace`` observability.

    Installs a metrics registry and/or tracer for the block, then prints the
    metrics table on stderr and writes the trace JSON on clean exit.  With
    neither flag this is a no-op, so un-profiled runs stay on the zero-cost
    null instruments.
    """
    profile = getattr(args, "profile", False)
    trace = getattr(args, "trace", None)
    if not profile and trace is None:
        yield
        return
    from repro.analysis import format_metrics_table
    from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer

    registry = MetricsRegistry() if profile else None
    tracer = Tracer() if trace is not None else None
    with use_registry(registry), use_tracer(tracer):
        yield
    if registry is not None:
        print(format_metrics_table(registry, title="profile"), file=sys.stderr)
    if tracer is not None:
        path = tracer.write(trace)
        print(f"[trace] {len(tracer.events)} events -> {path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bt",
        description=(
            "Reproduction of 'Analyzing Multiple File Downloading in "
            "BitTorrent' (Tian, Wu & Ng, ICPP 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for parallel execution (default: 1, serial)",
        )
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="replay unchanged experiments from the result cache "
            "(default: enabled; --no-cache disables)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="result cache directory (default: <out>/.cache)",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="re-execute even on a cache hit (fresh results still stored)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="retry a failed experiment up to N extra times with "
            "exponential backoff + jitter (default: 0)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-attempt wall-clock limit; an experiment exceeding it "
            "fails with status 'timeout' (default: no limit)",
        )
        p.add_argument(
            "--keep-going",
            action="store_true",
            help="run every experiment even when some fail; failures are "
            "listed in a table on stderr and the exit code is 1 "
            "(successes land in the cache, so a re-run resumes from "
            "the failures)",
        )
        p.add_argument(
            "--warm-start",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="thread each stationary point into the next solve on "
            "CMFSD parameter sweeps (default: enabled; --no-warm-start "
            "forces cold solves at every sweep point)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="collect solver/simulator/runner metrics and print the "
            "table on stderr (outputs stay byte-identical)",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write a Chrome/Perfetto trace JSON of the run to PATH "
            "(load it at chrome://tracing or ui.perfetto.dev)",
        )

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser(
        "run",
        help="run one experiment (or 'all'), or a scenario document",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=f"available experiments:\n{format_experiment_table()}",
    )
    run_p.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id from 'list', or 'all' (omit with --scenario)",
    )
    run_p.add_argument(
        "--scenario",
        default=None,
        metavar="PATH",
        help="run a declarative scenario document (YAML/JSON, see "
        "docs/API.md) end to end instead of a registered experiment",
    )
    run_p.add_argument(
        "--out",
        default="results",
        help="directory for CSV output (default: results/)",
    )
    add_runner_options(run_p)

    sub.add_parser("params", help="print Table 1 with the paper's values")

    report_p = sub.add_parser(
        "report", help="run every experiment and write results/REPORT.md"
    )
    report_p.add_argument(
        "--out", default="results", help="output directory (default: results/)"
    )
    report_p.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="restrict to these experiment ids",
    )
    add_runner_options(report_p)

    sim_p = sub.add_parser(
        "simulate", help="run the flow-level simulator on a JSON scenario"
    )
    sim_p.add_argument("scenario", help="path to a scenario JSON file")
    sim_p.add_argument(
        "--json", action="store_true", help="emit the summary as JSON on stdout"
    )

    serve_p = sub.add_parser(
        "serve", help="run a scenario as a live swarm service (record/replay)"
    )
    serve_p.add_argument(
        "--scenario",
        required=True,
        metavar="PATH",
        help="scenario document (YAML/JSON); its service: section supplies "
        "defaults for every flag below",
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="listen for line-JSON event/query clients on this TCP port",
    )
    serve_p.add_argument(
        "--host", default=None, metavar="ADDR", help="bind address (default: 127.0.0.1)"
    )
    serve_p.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock seconds to serve before a clean shutdown "
        "(default: until Ctrl-C)",
    )
    serve_p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append every applied operation to this NDJSON journal "
        "(replayable with 'replay')",
    )
    serve_p.add_argument(
        "--time-scale",
        type=float,
        default=None,
        metavar="X",
        help="virtual seconds per wall-clock second (default: 1)",
    )
    serve_p.add_argument(
        "--json", action="store_true", help="emit the final summary as JSON"
    )

    replay_p = sub.add_parser(
        "replay", help="re-execute a service journal deterministically"
    )
    replay_p.add_argument("journal", help="journal path written by 'serve'")
    replay_p.add_argument(
        "--json", action="store_true", help="emit the summary as JSON on stdout"
    )
    return parser


def _resolve_cache_dir(args) -> Path | None:
    """Cache directory from CLI flags: ``None`` when caching is off."""
    if not args.cache:
        return None
    if args.cache_dir is not None:
        return Path(args.cache_dir)
    return Path(args.out) / ".cache"


#: experiments whose drivers take a ``warm_start`` keyword (CMFSD sweeps)
_WARM_START_EXPERIMENTS = ("figure4a", "figure4bc", "adapt", "sensitivity")


def _warm_start_kwargs(args) -> dict[str, dict] | None:
    """Per-experiment overrides for ``--no-warm-start``.

    Only the disabled case injects kwargs: the default run keeps empty
    kwargs so its cache keys are identical to runs from older versions.
    """
    if args.warm_start:
        return None
    return {eid: {"warm_start": False} for eid in _WARM_START_EXPERIMENTS}


def _print_outcome(outcome, out_dir: Path) -> None:
    if not outcome.ok:
        print(
            f"[{outcome.experiment_id}] {outcome.status} after "
            f"{outcome.attempts} attempt(s): {outcome.error.summary()}"
        )
        return
    result = outcome.result
    print(result.rendered)
    csv_path = result.write_csv(out_dir)
    figure_paths = result.write_figures(out_dir)
    status = "cache hit" if outcome.cached else f"finished in {outcome.elapsed:.1f}s"
    print(f"\n[{outcome.experiment_id}] {status}; series -> {csv_path}")
    for path in figure_paths:
        print(f"[{outcome.experiment_id}] figure -> {path}")


def _report_failures(summary) -> int:
    """Print the failure table on stderr; exit code for the command."""
    if summary.ok:
        return 0
    print(f"\n{summary.format_failures()}", file=sys.stderr)
    print(
        f"{len(summary.failures)} of {len(summary.outcomes)} experiment(s) "
        "failed; successful results are cached, so re-running resumes "
        "from the failures",
        file=sys.stderr,
    )
    return 1


def _print_summary_table(summary, title: str) -> None:
    from repro.analysis.tables import format_table

    rows = [
        ["users completed", float(summary.n_users_completed)],
        ["avg online time / file", summary.avg_online_time_per_file],
        ["avg download time / file", summary.avg_download_time_per_file],
    ]
    print(format_table(["metric", "value"], rows, title=title))


def _cmd_serve(args) -> int:
    import asyncio
    import json as _json

    from repro.scenario import SpecError, load_spec, summary_to_dict
    from repro.service import SwarmService

    try:
        spec = load_spec(args.scenario)
    except (OSError, ValueError) as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return 2
    svc = spec.service
    host = args.host or (svc.host if svc is not None else "127.0.0.1")
    port = args.port if args.port is not None else (svc.port if svc is not None else None)
    duration = (
        args.duration
        if args.duration is not None
        else (svc.duration if svc is not None else None)
    )

    async def _serve():
        try:
            service = SwarmService(
                spec, journal_path=args.journal, time_scale=args.time_scale
            )
        except SpecError as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return None, 2
        await service.start()
        server = None
        if port is not None:
            server = await service.serve_tcp(host, port)
            bound = server.sockets[0].getsockname()
            print(f"[serve] listening on {bound[0]}:{bound[1]}", file=sys.stderr)
        try:
            if duration is not None:
                await asyncio.sleep(duration)
            else:
                await asyncio.Event().wait()  # until Ctrl-C
        except asyncio.CancelledError:
            pass
        finally:
            if server is not None:
                server.close()
                await server.wait_closed()
            await service.stop()
        return service, 0

    try:
        service, code = asyncio.run(_serve())
    except KeyboardInterrupt:
        print(
            "[serve] interrupted; an unsealed journal still replays "
            "(without digest verification)",
            file=sys.stderr,
        )
        return 130
    if service is None:
        return code
    summary = service.core.summary
    if args.json:
        print(
            _json.dumps(
                {
                    "summary": summary_to_dict(summary),
                    "digest": service.digest,
                    "ingest": service.counters,
                    "final_t": service.core.now,
                },
                indent=2,
            )
        )
    else:
        _print_summary_table(
            summary,
            f"live {spec.scheme.value} service (t={service.core.now:.1f} virtual)",
        )
        print(f"\n[serve] ingest: {service.counters}; digest {service.digest[:16]}...")
        if args.journal:
            print(f"[serve] journal -> {args.journal} (replay with 'repro-bt replay')")
    return code


def _cmd_replay(args) -> int:
    import json as _json

    from repro.scenario import summary_to_dict
    from repro.service import JournalError, ReplayMismatchError, replay_journal

    started = time.perf_counter()
    try:
        result = replay_journal(args.journal)
    except JournalError as exc:
        print(f"bad journal: {exc}", file=sys.stderr)
        return 2
    except ReplayMismatchError as exc:
        print(f"replay mismatch: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    if args.json:
        print(
            _json.dumps(
                {
                    "summary": summary_to_dict(result.summary),
                    "digest": result.digest,
                    "verified": result.verified,
                    "events_applied": result.events_applied,
                    "final_t": result.final_t,
                },
                indent=2,
            )
        )
        return 0
    _print_summary_table(
        result.summary,
        f"replayed journal ({result.events_applied} events, "
        f"t={result.final_t:.1f}, {elapsed:.1f}s)",
    )
    if result.recorded_digest is None:
        print(
            "\n[replay] journal was never sealed (service did not shut down "
            "cleanly); summary is deterministic but unverified"
        )
    else:
        print(f"\n[replay] digest {result.digest[:16]}... verified against journal")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(format_experiment_table())
        return 0
    if args.command == "params":
        print(format_table1(PAPER_PARAMETERS))
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report
        from repro.runner import TaskFailedError

        only = tuple(args.only) if args.only else None
        cache_dir = _resolve_cache_dir(args)
        try:
            with _observing(args):
                path, summary = generate_report(
                    args.out,
                    experiment_ids=only,
                    jobs=args.jobs,
                    cache_dir=cache_dir,
                    use_cache=cache_dir is not None,
                    force=args.force,
                    kwargs_map=_warm_start_kwargs(args),
                    retries=args.retries,
                    task_timeout=args.task_timeout,
                    keep_going=args.keep_going,
                )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except TaskFailedError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(f"report written to {path}")
        return _report_failures(summary)
    if args.command == "simulate":
        import json as _json

        from repro.analysis.tables import format_table
        from repro.scenario import load_sim_config, summary_to_dict
        from repro.sim.scenarios import run_scenario

        try:
            config = load_sim_config(args.scenario)
        except (OSError, ValueError, _json.JSONDecodeError) as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
        started = time.perf_counter()
        summary = run_scenario(config)
        elapsed = time.perf_counter() - started
        if args.json:
            print(_json.dumps(summary_to_dict(summary), indent=2))
        else:
            rows = [
                ["users completed", float(summary.n_users_completed)],
                ["avg online time / file", summary.avg_online_time_per_file],
                ["avg download time / file", summary.avg_download_time_per_file],
            ]
            print(
                format_table(
                    ["metric", "value"],
                    rows,
                    title=f"{config.scheme.value} scenario ({elapsed:.1f}s)",
                )
            )
        return 0
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "run" and args.scenario is not None:
        if args.experiment is not None:
            print(
                "pass either an experiment id or --scenario PATH, not both",
                file=sys.stderr,
            )
            return 2
        from repro.scenario import SpecError, load_spec, run_spec, spec_experiment_id

        try:
            spec = load_spec(args.scenario)
        except (OSError, ValueError) as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
        eid = spec_experiment_id(spec, fallback=Path(args.scenario).stem)
        started = time.perf_counter()
        try:
            result = run_spec(spec, experiment_id=eid)
        except SpecError as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
        out_dir = Path(args.out)
        print(result.rendered)
        csv_path = result.write_csv(out_dir)
        elapsed = time.perf_counter() - started
        print(f"\n[{eid}] finished in {elapsed:.1f}s; series -> {csv_path}")
        for path in result.write_figures(out_dir):
            print(f"[{eid}] figure -> {path}")
        return 0
    if args.command == "run":
        from repro.runner import TaskFailedError, run_experiments

        if args.experiment is None:
            print(
                "pass an experiment id (see 'repro-bt list'), 'all', "
                "or --scenario PATH",
                file=sys.stderr,
            )
            return 2
        out_dir = Path(args.out)
        running_all = args.experiment == "all"
        ids = (
            [eid for eid, _ in list_experiments()]
            if running_all
            else [args.experiment]
        )
        progress = (
            (lambda line: print(line, flush=True)) if running_all else None
        )
        try:
            with _observing(args):
                summary = run_experiments(
                    ids,
                    jobs=args.jobs,
                    cache_dir=_resolve_cache_dir(args),
                    force=args.force,
                    kwargs_map=_warm_start_kwargs(args),
                    progress=progress,
                    retries=args.retries,
                    task_timeout=args.task_timeout,
                    keep_going=args.keep_going,
                )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except TaskFailedError as exc:
            print(exc, file=sys.stderr)
            return 1
        for outcome in summary.outcomes:
            if running_all:
                print(f"\n{'=' * 72}\n# {outcome.experiment_id}\n{'=' * 72}")
            _print_outcome(outcome, out_dir)
        if running_all:
            print(f"\n{summary.format_summary()}")
        return _report_failures(summary)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
