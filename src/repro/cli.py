"""Command-line interface: ``python -m repro`` / ``repro-bt``.

Subcommands
-----------
``list``
    Show the available experiment ids with descriptions.
``run <id> [--out DIR]``
    Execute one experiment end to end; prints its report and writes the
    numeric series to ``<DIR>/<id>.csv`` (default ``results/``).
``run all [--out DIR]``
    Execute every registered experiment.
``params``
    Print Table 1 with the paper's evaluation values.
``simulate <scenario.json> [--json]``
    Run the flow-level simulator on a JSON scenario description (see
    :mod:`repro.sim.config_io` for the schema) and print the summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.parameters import PAPER_PARAMETERS, format_table1
from repro.experiments import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bt",
        description=(
            "Reproduction of 'Analyzing Multiple File Downloading in "
            "BitTorrent' (Tian, Wu & Ng, ICPP 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run_p.add_argument(
        "--out",
        default="results",
        help="directory for CSV output (default: results/)",
    )

    sub.add_parser("params", help="print Table 1 with the paper's values")

    report_p = sub.add_parser(
        "report", help="run every experiment and write results/REPORT.md"
    )
    report_p.add_argument(
        "--out", default="results", help="output directory (default: results/)"
    )
    report_p.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="restrict to these experiment ids",
    )

    sim_p = sub.add_parser(
        "simulate", help="run the flow-level simulator on a JSON scenario"
    )
    sim_p.add_argument("scenario", help="path to a scenario JSON file")
    sim_p.add_argument(
        "--json", action="store_true", help="emit the summary as JSON on stdout"
    )
    return parser


def _run_one(experiment_id: str, out_dir: Path) -> None:
    driver = get_experiment(experiment_id)
    started = time.perf_counter()
    result = driver()
    elapsed = time.perf_counter() - started
    print(result.rendered)
    csv_path = result.write_csv(out_dir)
    figure_paths = result.write_figures(out_dir)
    print(f"\n[{experiment_id}] finished in {elapsed:.1f}s; series -> {csv_path}")
    for path in figure_paths:
        print(f"[{experiment_id}] figure -> {path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for eid, desc in list_experiments():
            print(f"{eid:12s} {desc}")
        return 0
    if args.command == "params":
        print(format_table1(PAPER_PARAMETERS))
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        only = tuple(args.only) if args.only else None
        try:
            path = generate_report(args.out, experiment_ids=only)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print(f"report written to {path}")
        return 0
    if args.command == "simulate":
        import json as _json

        from repro.analysis.tables import format_table
        from repro.sim.config_io import load_scenario, summary_to_dict
        from repro.sim.scenarios import run_scenario

        try:
            config = load_scenario(args.scenario)
        except (OSError, ValueError, _json.JSONDecodeError) as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
        started = time.perf_counter()
        summary = run_scenario(config)
        elapsed = time.perf_counter() - started
        if args.json:
            print(_json.dumps(summary_to_dict(summary), indent=2))
        else:
            rows = [
                ["users completed", float(summary.n_users_completed)],
                ["avg online time / file", summary.avg_online_time_per_file],
                ["avg download time / file", summary.avg_download_time_per_file],
            ]
            print(
                format_table(
                    ["metric", "value"],
                    rows,
                    title=f"{config.scheme.value} scenario ({elapsed:.1f}s)",
                )
            )
        return 0
    if args.command == "run":
        out_dir = Path(args.out)
        if args.experiment == "all":
            for eid, _ in list_experiments():
                print(f"\n{'=' * 72}\n# {eid}\n{'=' * 72}")
                _run_one(eid, out_dir)
        else:
            try:
                _run_one(args.experiment, out_dir)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
