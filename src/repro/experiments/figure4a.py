"""Figure 4(a): CMFSD average online time per file over the (p, rho) grid.

Every grid point is one steady-state solve of the Eq.-(5) ODE system.
Expected shape (paper Sec. 4.2.2): for every correlation ``p`` the online
time per file increases monotonically with ``rho`` (``rho = 0`` is the
system optimum); the improvement of ``rho = 0`` over ``rho = 1`` grows with
``p``; and at ``rho = 1`` the scheme performs as MFCD.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_heatmap, ascii_plot
from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel, steady_state_path
from repro.core.correlation import CorrelationModel
from repro.core.mfcd import MFCDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec, HeatmapSpec

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    p_values: np.ndarray | None = None,
    rho_values: np.ndarray | None = None,
    warm_start: bool = True,
) -> ExperimentResult:
    """Sweep (p, rho) and solve the CMFSD steady state at each point.

    Each grid row is solved as a continuation path along rho
    (:func:`repro.core.cmfsd.steady_state_path`); ``warm_start=False``
    solves every grid point cold, for cross-checking.
    """
    if p_values is None:
        p_values = np.linspace(0.1, 1.0, 10)
    if rho_values is None:
        rho_values = np.linspace(0.0, 1.0, 11)
    p_values = np.asarray(p_values, dtype=float)
    rho_values = np.asarray(rho_values, dtype=float)
    if np.any((p_values <= 0) | (p_values > 1)):
        raise ValueError("p values must lie in (0, 1]")
    if np.any((rho_values < 0) | (rho_values > 1)):
        raise ValueError("rho values must lie in [0, 1]")

    grid = np.empty((p_values.size, rho_values.size))
    mfcd_ref = np.empty(p_values.size)
    rows: list[tuple] = []
    for a, p in enumerate(p_values):
        corr = CorrelationModel(num_files=params.num_files, p=float(p))
        mfcd_ref[a] = (
            MFCDModel.from_correlation(params, corr)
            .system_metrics()
            .avg_online_time_per_file
        )
        # Each row is a continuation path along rho: neighbouring steady
        # states are close, so each one seeds the next point's Newton solve.
        models = [
            CMFSDModel.from_correlation(params, corr, rho=float(rho))
            for rho in rho_values
        ]
        steadies = steady_state_path(models, warm_start=warm_start)
        for b, (rho, model, steady) in enumerate(zip(rho_values, models, steadies)):
            grid[a, b] = model.system_metrics(steady).avg_online_time_per_file
            rows.append((float(p), float(rho), float(grid[a, b]), float(mfcd_ref[a])))

    headers = ("p", "rho", "cmfsd_online_per_file", "mfcd_online_per_file")
    table = format_table(
        headers,
        rows,
        title=(
            "Figure 4(a): CMFSD average online time per file over (p, rho) "
            f"(K={params.num_files})"
        ),
    )
    heat = ascii_heatmap(
        grid,
        row_labels=list(p_values),
        col_labels=list(rho_values),
        title="Figure 4(a) surface (rows: p, cols: rho; darker = slower)",
        row_name="p",
        col_name="rho",
    )
    curves = ascii_plot(
        {
            f"p={p_values[a]:.2g}": (rho_values, grid[a])
            for a in range(0, p_values.size, max(1, p_values.size // 4))
        },
        title="Figure 4(a) slices: online time per file vs rho",
        xlabel="rho",
        ylabel="avg online time per file",
    )
    worst = grid[:, -1]
    best = grid[:, 0]
    notes = (
        "rho=0 minimises the online time for every correlation; the "
        f"improvement over rho=1 grows with p (x{worst[0] / best[0]:.2f} at "
        f"p={p_values[0]:.2g} to x{worst[-1] / best[-1]:.2f} at "
        f"p={p_values[-1]:.2g}); at rho=1 CMFSD matches MFCD "
        f"(max |diff| = {float(np.max(np.abs(worst - mfcd_ref))):.3g})."
    )
    return ExperimentResult(
        experiment_id="figure4a",
        title="Figure 4(a): CMFSD online time per file over (p, rho)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{heat}\n\n{curves}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="online_vs_rho",
                series={
                    f"p={p_values[a]:.2g}": (tuple(rho_values), tuple(grid[a]))
                    for a in range(0, p_values.size, max(1, p_values.size // 4))
                },
                title="Figure 4(a) (reproduced): CMFSD online time per file",
                xlabel="rho (tit-for-tat share of upload)",
                ylabel="avg online time per file",
            ),
            HeatmapSpec(
                name="surface",
                grid=tuple(tuple(float(v) for v in row) for row in grid),
                row_labels=tuple(float(v) for v in p_values),
                col_labels=tuple(float(v) for v in rho_values),
                title="Figure 4(a) surface: online time per file",
                row_name="p",
                col_name="rho",
            ),
        ),
    )
