"""Experiment drivers regenerating every table and figure of the paper.

Each driver module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` -- a plain container of
the numeric series plus a rendered text report (tables + ASCII plots).  The
registry maps experiment ids (``figure2``, ``figure4a``, ...) to drivers;
``python -m repro run <id>`` executes one end to end and writes its CSV.

Experiment index (see DESIGN.md for the full mapping):

========== ================================================================
table1     Table 1 -- fluid-model parameter glossary
figure2    Fig. 2  -- avg online time/file vs correlation p, MTCD vs MTSD
figure3    Fig. 3  -- per-class times, MTCD vs MTSD, p in {0.1, 1.0}
figure4a   Fig. 4a -- CMFSD avg online time/file over the (p, rho) grid
figure4bc  Fig. 4b/c -- per-class times, CMFSD (rho in {0.1, 0.9}) vs MFCD
adapt      Sec. 4.3 / future work -- Adapt mechanism study (fluid + sim)
validation cross-check: simulator vs fluid predictions for all schemes
========== ================================================================
"""

from repro.experiments.base import (
    ExperimentResult,
    FigureBase,
    FigureSpec,
    HeatmapSpec,
)
from repro.experiments.registry import (
    REGISTRY,
    get_experiment,
    list_experiments,
    register_experiment,
)

__all__ = [
    "ExperimentResult",
    "FigureBase",
    "FigureSpec",
    "HeatmapSpec",
    "REGISTRY",
    "get_experiment",
    "list_experiments",
    "register_experiment",
]
