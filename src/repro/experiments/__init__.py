"""Experiment drivers regenerating every table and figure of the paper.

Each driver module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` -- a plain container of
the numeric series plus a rendered text report (tables + ASCII plots).  The
registry maps experiment ids (``figure2``, ``figure4a``, ...) to drivers;
``python -m repro run <id>`` executes one end to end and writes its CSV.

The experiment index is the registry itself: ``repro list`` (or
:func:`repro.experiments.format_experiment_table`) prints the live
id/description table, and ``repro run --help`` embeds the same table --
both are generated from ``REGISTRY`` at call time, so they cannot drift
from the experiments that exist.  See DESIGN.md for the paper mapping.
Experiments can also be registered from declarative scenario documents
with ``register_experiment(id, spec="path/to/scenario.yaml")`` (see
:mod:`repro.scenario`).
"""

from repro.experiments.base import (
    ExperimentResult,
    FigureBase,
    FigureSpec,
    HeatmapSpec,
)
from repro.experiments.registry import (
    REGISTRY,
    format_experiment_table,
    get_experiment,
    list_experiments,
    register_experiment,
)

__all__ = [
    "ExperimentResult",
    "FigureBase",
    "FigureSpec",
    "HeatmapSpec",
    "REGISTRY",
    "format_experiment_table",
    "get_experiment",
    "list_experiments",
    "register_experiment",
]
