"""Mixing-assumption experiment (extension): how many neighbours suffice?

Every fluid model in the paper assumes *full mixing* -- each peer can
trade with every other peer in its torrent.  Real peers only know the
bounded random sample the tracker returns per announce (``numwant``,
classically 50).  This experiment runs a single-torrent swarm through the
flow-level simulator at decreasing neighbour limits and compares the
measured per-file transfer time against the fluid ``T``.

Expected shape: agreement within a few percent down to surprisingly small
limits (~10 neighbours at a ~70-peer swarm -- random graphs connect at
O(log n) degree), then sharp degradation as the swarm fragments; the
protocol's numwant = 50 default has a comfortable safety margin.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.correlation import CorrelationModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.core.single_torrent import SingleTorrentModel
from repro.experiments.base import ExperimentResult, FigureSpec
from repro.sim.arrivals import ArrivalProcess
from repro.sim.behaviors import BehaviorKind, make_behavior
from repro.sim.swarm import SeedPolicy
from repro.sim.system import SimulationSystem

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    neighbor_limits: tuple[int | None, ...] = (None, 50, 20, 10, 5, 3, 2, 1),
    visit_rate: float = 1.0,
    t_end: float = 2500.0,
    warmup: float = 700.0,
    seed: int = 11,
) -> ExperimentResult:
    """Sweep the per-announce peer-sample size on a single torrent."""
    single = params.with_(num_files=1)
    corr = CorrelationModel(num_files=1, p=0.9, visit_rate=visit_rate)
    arrival = corr.per_torrent_rates()[0]
    fluid = SingleTorrentModel(single, arrival_rate=float(arrival)).steady_state()

    headers = (
        "neighbor_limit",
        "sim_transfer_time",
        "fluid_T",
        "ratio",
        "mean_swarm_size",
        "users_completed",
    )
    rows: list[tuple] = []
    for limit in neighbor_limits:
        if limit is not None and limit < 1:
            raise ValueError(f"neighbor limits must be >= 1 or None, got {limit}")
        system = SimulationSystem(
            mu=single.mu,
            eta=single.eta,
            gamma=single.gamma,
            num_classes=1,
            neighbor_limit=limit,
        )
        system.add_group((0,), SeedPolicy.SUBTORRENT)
        arrivals = ArrivalProcess(
            system, corr, make_behavior(BehaviorKind.SEQUENTIAL), t_end=t_end
        )
        system.start_sampler(10.0, t_end)
        arrivals.start()
        system.run_until(t_end)
        summary = system.metrics.summarize(warmup=warmup, horizon=t_end)
        sim_T = float(np.nanmean(summary.entry_download_time_by_class))
        dl, seeds = summary.swarm_population(0, 0)
        rows.append(
            (
                0 if limit is None else limit,  # 0 encodes "unbounded" in the CSV
                sim_T,
                fluid.download_time,
                sim_T / fluid.download_time,
                float(dl.sum() + seeds.sum()),
                summary.n_users_completed,
            )
        )

    table = format_table(
        headers,
        rows,
        title=(
            "Full-mixing assumption vs tracker peer-sample size "
            f"(single torrent, lambda={arrival:.2f}, fluid T={fluid.download_time:.1f}; "
            "neighbor_limit 0 = unbounded)"
        ),
    )
    finite = [r for r in rows if r[0] > 0]
    xs = np.array([r[0] for r in finite], dtype=float)
    ratios = np.array([r[3] for r in finite])
    plot = ascii_plot(
        {"sim/fluid": (xs, ratios)},
        title="Transfer-time inflation vs neighbour limit (1.0 = fluid)",
        xlabel="numwant (peers per announce)",
        ylabel="sim T / fluid T",
        height=14,
    )
    threshold = min((r[0] for r in finite if r[3] < 1.05), default=None)
    notes = (
        "The fluid's full-mixing assumption holds (within 5%) down to a "
        f"peer sample of {threshold} at this ~70-peer swarm; below ~4 "
        "neighbours the swarm fragments and transfer times inflate "
        f"{max(ratios):.1f}x.  BitTorrent's numwant = 50 default has a wide "
        "safety margin, which is why fluid models describe real torrents "
        "so well."
    )
    return ExperimentResult(
        experiment_id="mixing",
        title="Full-mixing assumption vs bounded neighbour sets (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="ratio_vs_numwant",
                series={"sim T / fluid T": (tuple(xs), tuple(ratios))},
                title="Transfer-time inflation vs neighbour limit",
                xlabel="numwant (peers per announce)",
                ylabel="sim T / fluid T",
            ),
        ),
    )
