"""Eta-measurement experiment (extension): what should ``eta`` be?

The paper sets ``eta = 0.5`` (from the Izal et al. measurement) while
Qiu--Srikant argue ``eta -> 1`` as the number of chunks grows.  Our
chunk-level swarm simulator (:mod:`repro.chunks`) measures the effective
``eta`` -- the fraction of downloader upload capacity delivering useful
bytes under real piece maps, rarest-first and tit-for-tat -- across the
chunk-count and swarm-size axes.

Expected shape: ``eta_eff`` increases with the chunk count (more chunks =
more opportunities for downloaders to hold something their neighbours
need), interpolating between the two papers' positions: well below 1 for
coarse-grained files and small flash crowds, approaching (but not
reaching) 1 for fine-grained files.  Seed utilization stays near 1
throughout -- seeds always hold what others need.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.chunks import ChunkSwarmConfig, measure_eta, measure_eta_open
from repro.chunks.fluid_bridge import synchronized_crowd_makespan
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]

#: root entropy for this experiment's seed derivation
_SEED_ROOT = 0xE7A_2006

#: axis tags keeping the per-sweep seed streams disjoint
_SEED_AXES = {"chunks": 0, "peers": 1, "slots": 2, "open": 3, "large_swarm": 4}


def _derive_seed(axis: str, value: int, rep: int) -> int:
    """Collision-free swarm seed keyed on (axis, value, rep).

    The old ``1000*rep + n_peers + n_chunks`` scheme handed identical RNG
    streams to distinct grid points with equal sums (peers=40/chunks=20 vs
    peers=20/chunks=40), silently correlating sweep cells.  SeedSequence
    hashes the full key, so every (axis, value, rep) cell draws an
    independent stream.
    """
    seq = np.random.SeedSequence((_SEED_ROOT, _SEED_AXES[axis], value, rep))
    return int(seq.generate_state(1)[0])


def run(
    *,
    chunk_counts: tuple[int, ...] = (10, 25, 50, 100, 200, 400),
    peer_counts: tuple[int, ...] = (10, 30, 60),
    reference_peers: int = 30,
    reference_chunks: int = 100,
    n_repeats: int = 2,
    upload_rate: float = 0.02,
    large_swarm_peers: int | tuple[int, ...] | None = (1000, 10000),
    large_swarm_chunks: int = 400,
    large_swarm_degree: int | None = 64,
) -> ExperimentResult:
    """Sweep chunk count and swarm size; measure the effective eta.

    ``large_swarm_peers`` adds single-repeat flash-crowd points at
    realistic scale (>= 1000 peers, ``large_swarm_chunks`` pieces -- piece
    counts grow with file size in real swarms).  Points up to 1000 peers
    run on the dense vectorised engine (full mixing, unchanged from
    earlier revisions); larger points run on the sparse neighborhood
    engine with ``large_swarm_degree`` tracker-sampled neighbours per
    peer, the topology real swarms actually have.  Accepts a single int
    for backward compatibility; pass ``None`` to skip the axis.
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    if large_swarm_peers is None:
        large_points: tuple[int, ...] = ()
    elif isinstance(large_swarm_peers, int):
        large_points = (large_swarm_peers,)
    else:
        large_points = tuple(large_swarm_peers)
    for pt in large_points:
        if pt < 1:
            raise ValueError(f"large_swarm_peers must be >= 1, got {pt}")
    headers = (
        "sweep",
        "value",
        "eta_effective",
        "seed_utilization",
        "mean_download_time",
        "fluid_at_measured_eta",
        "fluid_at_eta_0.5",
    )
    rows: list[tuple] = []

    def _measure(
        axis: str,
        value: int,
        n_peers: int,
        n_chunks: int,
        *,
        reps: int,
        degree: int | None = None,
    ) -> tuple[float, ...]:
        etas, utils, times = [], [], []
        for r in range(reps):
            m = measure_eta(
                n_peers=n_peers,
                config=ChunkSwarmConfig(
                    n_chunks=n_chunks,
                    upload_rate=upload_rate,
                    neighbor_degree=degree,
                ),
                seed=_derive_seed(axis, value, r),
            )
            etas.append(m.eta_effective)
            utils.append(m.seed_utilization)
            times.append(m.mean_download_time)
        eta, util = float(np.mean(etas)), float(np.mean(utils))
        # Closed-loop check: the synchronized-crowd fluid at the measured
        # eta must predict the simulated download time; the paper's generic
        # eta = 0.5 is the reference point.
        fluid = synchronized_crowd_makespan(
            n_leechers=n_peers, n_seeds=1, mu=upload_rate,
            eta=eta, seed_utilization=util,
        )
        fluid_05 = synchronized_crowd_makespan(
            n_leechers=n_peers, n_seeds=1, mu=upload_rate, eta=0.5
        )
        return eta, util, float(np.mean(times)), fluid, fluid_05

    for n_chunks in chunk_counts:
        rows.append(
            (
                "chunks",
                n_chunks,
                *_measure("chunks", n_chunks, reference_peers, n_chunks, reps=n_repeats),
            )
        )
    for n_peers in peer_counts:
        rows.append(
            (
                "peers",
                n_peers,
                *_measure("peers", n_peers, n_peers, reference_chunks, reps=n_repeats),
            )
        )
    for pt in large_points:
        # Realistic-scale flash crowds (single repeat: one run already
        # averages ~pt download times).  The scalar engine cannot reach
        # these points; past 1000 peers even the dense O(P^2) matrices
        # become the bottleneck, so the sparse bounded-degree engine
        # takes over.
        degree = (
            large_swarm_degree
            if large_swarm_degree is not None and pt > 1000
            else None
        )
        rows.append(
            (
                "large_swarm",
                pt,
                *_measure(
                    "large_swarm",
                    pt,
                    pt,
                    large_swarm_chunks,
                    reps=1,
                    degree=degree,
                ),
            )
        )

    # Unchoke-slot sweep: BitTorrent's classic tuning knob.  Few slots
    # concentrate bandwidth (fast links, poor reciprocity coverage); many
    # slots fragment it.
    for slots in (1, 2, 4, 8):
        etas, utils, times = [], [], []
        for r in range(n_repeats):
            m = measure_eta(
                n_peers=reference_peers,
                config=ChunkSwarmConfig(
                    n_chunks=reference_chunks,
                    upload_rate=upload_rate,
                    n_upload_slots=slots,
                ),
                seed=_derive_seed("slots", slots, r),
            )
            etas.append(m.eta_effective)
            utils.append(m.seed_utilization)
            times.append(m.mean_download_time)
        fluid = synchronized_crowd_makespan(
            n_leechers=reference_peers,
            n_seeds=1,
            mu=upload_rate,
            eta=float(np.mean(etas)),
            seed_utilization=float(np.mean(utils)),
        )
        rows.append(
            (
                "slots",
                slots,
                float(np.mean(etas)),
                float(np.mean(utils)),
                float(np.mean(times)),
                fluid,
                float("nan"),
            )
        )

    # Open (churned) swarm: the steady-state regime the fluid models
    # actually describe.  eta is measured over the steady window and the
    # fluid prediction uses the measured coefficients (origin seed
    # included) -- see OpenSwarmMeasurement.
    open_m = measure_eta_open(
        arrival_rate=0.25,
        gamma=0.05,
        config=ChunkSwarmConfig(
            n_chunks=reference_chunks, upload_rate=upload_rate
        ),
        t_end=2500.0,
        warmup=800.0,
        seed=_derive_seed("open", reference_chunks, 0),
    )
    rows.append(
        (
            "open",
            reference_chunks,
            open_m.eta_effective,
            open_m.seed_utilization,
            open_m.mean_download_time,
            open_m.fluid_download_time,
            float("nan"),
        )
    )

    table = format_table(
        headers,
        rows,
        title=(
            f"Effective eta from the chunk-level swarm "
            f"(flash crowd, {reference_peers} peers / {reference_chunks} chunks "
            "reference, 1 initial seed)"
        ),
    )
    chunk_rows = [r for r in rows if r[0] == "chunks"]
    plot = ascii_plot(
        {
            "eta_eff": (
                np.array([r[1] for r in chunk_rows], dtype=float),
                np.array([r[2] for r in chunk_rows]),
            ),
            "seed util": (
                np.array([r[1] for r in chunk_rows], dtype=float),
                np.array([r[3] for r in chunk_rows]),
            ),
        },
        title="Effective eta vs chunk count (the paper's 0.5 vs Qiu-Srikant's ~1)",
        xlabel="chunks",
        ylabel="utilization",
        height=14,
    )
    eta_lo = chunk_rows[0][2]
    eta_hi = chunk_rows[-1][2]
    loop_err = max(abs(r[5] - r[4]) / r[4] for r in rows)
    open_row = next(r for r in rows if r[0] == "open")
    notes_open = (
        f"  In the *open* (churned) steady state -- the fluid models' own "
        f"regime -- eta_eff is {open_row[2]:.2f}, far above the flash-crowd "
        "values: the paper's 0.5 reflects crowd lifecycles, Qiu-Srikant's "
        "~1 the warmed-up steady state, and the fluid T at the measured "
        f"coefficients matches the open swarm within "
        f"{abs(open_row[5] - open_row[4]) / open_row[4]:.1%}."
    )
    large_rows = [r for r in rows if r[0] == "large_swarm"]
    notes_large = ""
    if large_rows:
        pts = ", ".join(f"{int(r[1])} peers -> {r[2]:.2f}" for r in large_rows)
        notes_large = (
            f"  At realistic scale ({large_swarm_chunks} chunks; array "
            f"engines, bounded degree {large_swarm_degree} past 1000 peers) "
            f"eta_eff holds steady: {pts} -- many-chunk flash crowds land "
            "in the paper's eta ~ 0.5 regime, not Qiu-Srikant's eta -> 1, "
            "and a realistic sparse neighborhood does not change that."
        )
    notes = (
        f"eta_eff rises from {eta_lo:.2f} at {chunk_rows[0][1]} chunks to "
        f"{eta_hi:.2f} at {chunk_rows[-1][1]} -- the paper's eta = 0.5 and "
        "Qiu-Srikant's eta ~ 1 are both right in their own regimes "
        "(coarse-grained flash crowds vs many-chunk files); the fluid "
        "conclusions themselves hold for any eta < 1 (see the sensitivity "
        "experiment).  Closed loop: the synchronized-crowd fluid at the "
        f"measured eta predicts the simulated download time within "
        f"{loop_err:.1%} worst-case, while the generic eta=0.5 reference "
        "misses by tens of percent outside its regime." + notes_large + notes_open
    )
    chunk_x = tuple(float(r[1]) for r in chunk_rows)
    return ExperimentResult(
        experiment_id="eta",
        title="Measuring eta with a chunk-level swarm (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="eta_vs_chunks",
                series={
                    "eta_eff (flash crowd)": (chunk_x, tuple(r[2] for r in chunk_rows)),
                    "seed utilization": (chunk_x, tuple(r[3] for r in chunk_rows)),
                    "eta_eff (open swarm)": (
                        (chunk_x[0], chunk_x[-1]),
                        (open_row[2], open_row[2]),
                    ),
                },
                title="Effective eta vs chunk count",
                xlabel="chunks",
                ylabel="utilization",
            ),
        ),
    )
