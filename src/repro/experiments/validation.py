"""Cross-validation: discrete-event simulator vs fluid-model predictions.

The paper's evaluation is purely numerical; this experiment is the
reproduction's added rigour: an independent peer-level implementation of
each scheme must land on the fluid predictions.  Compared quantities:

* **MTSD** -- per-file transfer time (fluid ``T``) and per-torrent
  populations.
* **MTCD** -- per-class transfer times (fluid ``i*c``), per-class swarm
  populations ``x_j^i`` and seed populations ``y_j^i`` (Eq. 2).
* **MFCD** -- aggregate download time per file (equivalence with MTCD).
* **CMFSD** -- aggregate online time per file at two rho settings (Eq. 5).

Stochastic finite-population runs will not match to machine precision; the
relative errors reported here are typically a few percent at the default
scale.  One deliberate, documented deviation: user-level *online* times for
concurrent schemes exceed the fluid value because a user stays until the
last of its i exponential seeding phases ends (the fluid model books 1/gamma
per peer); transfer times and populations are free of this effect.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel
from repro.core.correlation import CorrelationModel
from repro.core.mfcd import MFCDModel
from repro.core.mtcd import MTCDModel
from repro.core.mtsd import MTSDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.core.schemes import Scheme
from repro.experiments.base import ExperimentResult
from repro.sim.scenarios import ScenarioConfig, run_scenario

__all__ = ["run"]


def _rel_err(fluid: float, sim: float) -> float:
    scale = max(abs(fluid), abs(sim), 1e-12)
    return abs(fluid - sim) / scale


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    p: float = 0.5,
    visit_rate: float = 1.0,
    t_end: float = 3000.0,
    warmup: float = 900.0,
    seed: int = 11,
    cmfsd_visit_rate: float | None = None,
    classes_to_check: tuple[int, ...] = (3, 5, 7),
) -> ExperimentResult:
    """Run every scheme in the simulator and compare against the fluid model."""
    corr = CorrelationModel(num_files=params.num_files, p=p, visit_rate=visit_rate)
    corr_cmfsd = CorrelationModel(
        num_files=params.num_files,
        p=p,
        visit_rate=cmfsd_visit_rate if cmfsd_visit_rate is not None else visit_rate,
    )
    rows: list[tuple] = []

    def record(scheme: str, quantity: str, label, fluid: float, sim: float) -> None:
        rows.append((scheme, quantity, label, fluid, sim, _rel_err(fluid, sim)))

    # --- MTSD ------------------------------------------------------------------
    mtsd_fluid = MTSDModel.from_correlation(params, corr)
    summary = run_scenario(
        ScenarioConfig(
            scheme=Scheme.MTSD,
            params=params,
            correlation=corr,
            t_end=t_end,
            warmup=warmup,
            seed=seed,
        )
    )
    T = mtsd_fluid.single_download_time()
    sim_T = float(np.nanmean(summary.entry_download_time_by_class))
    record("MTSD", "transfer_time_per_file", "all", T, sim_T)
    torrent = mtsd_fluid.torrent_steady_state()
    sim_x = float(
        np.mean([v.sum() for v in summary.mean_downloaders.values()])
    )
    sim_y = float(np.mean([v.sum() for v in summary.mean_seeds.values()]))
    record("MTSD", "downloaders_per_torrent", "total", torrent.downloaders, sim_x)
    record("MTSD", "seeds_per_torrent", "total", torrent.seeds, sim_y)

    # --- MTCD ------------------------------------------------------------------
    mtcd_fluid = MTCDModel.from_correlation(params, corr)
    steady = mtcd_fluid.steady_state()
    summary = run_scenario(
        ScenarioConfig(
            scheme=Scheme.MTCD,
            params=params,
            correlation=corr,
            t_end=t_end,
            warmup=warmup,
            seed=seed,
        )
    )
    c = mtcd_fluid.download_time_per_file()
    sim_total_x = float(np.mean([v.sum() for v in summary.mean_downloaders.values()]))
    sim_total_y = float(np.mean([v.sum() for v in summary.mean_seeds.values()]))
    record("MTCD", "downloaders_per_torrent", "total", steady.total_downloaders, sim_total_x)
    record("MTCD", "seeds_per_torrent", "total", steady.total_seeds, sim_total_y)
    for i in classes_to_check:
        record(
            "MTCD",
            "transfer_time",
            f"class {i}",
            i * c,
            float(summary.entry_download_time_by_class[i - 1]),
        )
        sim_xi = float(
            np.mean([v[i - 1] for v in summary.mean_downloaders.values()])
        )
        sim_yi = float(np.mean([v[i - 1] for v in summary.mean_seeds.values()]))
        record("MTCD", "downloaders_x_j^i", f"class {i}", float(steady.downloaders[i - 1]), sim_xi)
        record("MTCD", "seeds_y_j^i", f"class {i}", float(steady.seeds[i - 1]), sim_yi)

    # --- MFCD ------------------------------------------------------------------
    mfcd_fluid = MFCDModel.from_correlation(params, corr)
    summary = run_scenario(
        ScenarioConfig(
            scheme=Scheme.MFCD,
            params=params,
            correlation=corr_cmfsd,
            t_end=t_end,
            warmup=warmup,
            seed=seed,
        )
    )
    record(
        "MFCD",
        "avg_download_per_file",
        "all",
        mfcd_fluid.system_metrics().avg_download_time_per_file,
        summary.avg_download_time_per_file,
    )

    # --- MTBD (bounded concurrency, extension) -----------------------------------
    from repro.core.batched import BatchedDownloadModel
    from repro.sim.arrivals import ArrivalProcess
    from repro.sim.behaviors import BehaviorKind, make_behavior
    from repro.sim.swarm import SeedPolicy
    from repro.sim.system import SimulationSystem

    m_limit = 2
    mtbd_fluid = BatchedDownloadModel.from_correlation(params, corr, m_limit)
    system = SimulationSystem(
        mu=params.mu, eta=params.eta, gamma=params.gamma, num_classes=params.num_files
    )
    for f in range(params.num_files):
        system.add_group((f,), SeedPolicy.SUBTORRENT)
    arrivals = ArrivalProcess(
        system,
        corr,
        make_behavior(BehaviorKind.BATCHED, max_concurrency=m_limit),
        t_end=t_end,
    )
    arrivals.start()
    system.run_until(t_end)
    mtbd_summary = system.metrics.summarize(warmup=warmup, horizon=t_end)
    record(
        "MTBD(m=2)",
        "avg_online_per_file",
        "all",
        mtbd_fluid.system_metrics().avg_online_time_per_file,
        mtbd_summary.avg_online_time_per_file,
    )

    # --- CMFSD -----------------------------------------------------------------
    for rho in (0.0, 0.9):
        fluid = CMFSDModel.from_correlation(params, corr_cmfsd, rho=rho)
        fluid_metrics = fluid.system_metrics()
        summary = run_scenario(
            ScenarioConfig(
                scheme=Scheme.CMFSD,
                params=params,
                correlation=corr_cmfsd,
                t_end=t_end,
                warmup=warmup,
                seed=seed,
                rho=rho,
            )
        )
        record(
            "CMFSD",
            "avg_online_per_file",
            f"rho={rho}",
            fluid_metrics.avg_online_time_per_file,
            summary.avg_online_time_per_file,
        )
        record(
            "CMFSD",
            "avg_download_per_file",
            f"rho={rho}",
            fluid_metrics.avg_download_time_per_file,
            summary.avg_download_time_per_file,
        )

    headers = ("scheme", "quantity", "label", "fluid", "sim", "rel_err")
    table = format_table(
        headers,
        rows,
        title=(
            f"Simulator vs fluid model (p={p}, lambda0={visit_rate}, "
            f"horizon={t_end}, warmup={warmup})"
        ),
        precision=4,
    )
    worst = max(r[-1] for r in rows)
    notes = (
        f"Worst relative error {worst:.3%} across {len(rows)} compared "
        "quantities.  Transfer times and populations validate the fluid "
        "models directly; see the module docstring for the one expected "
        "online-time deviation under concurrent seeding."
    )
    return ExperimentResult(
        experiment_id="validation",
        title="Cross-validation: discrete-event simulator vs fluid models",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{notes}",
        notes=notes,
    )
