"""Figure 2 with simulation overlay (extension): fluid curves + DES points.

The strongest form of Figure 2: the analytic MTCD/MTSD curves from Eq.
(2)/(4), overlaid with independent discrete-event simulation measurements
at a few correlations.  Where the paper shows two model curves, this
reproduction shows that a peer-level system actually lands on them.

Expected shape (asserted in the benchmark): each simulated point within a
few percent of its fluid curve, with the documented exception that MTCD's
simulated *online* time runs slightly above the fluid (a user's concurrent
seeding phases end at the max of i exponentials, not after 1/gamma).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.correlation import CorrelationModel
from repro.core.mtcd import MTCDModel
from repro.core.mtsd import MTSDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.core.schemes import Scheme
from repro.experiments.base import ExperimentResult, FigureSpec
from repro.sim.scenarios import ScenarioConfig, run_scenario

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    sim_points: tuple[float, ...] = (0.2, 0.5, 0.9),
    visit_rate: float = 0.8,
    t_end: float = 2500.0,
    warmup: float = 700.0,
    seed: int = 31,
) -> ExperimentResult:
    """Simulate both multi-torrent schemes at a few correlations."""
    headers = (
        "p",
        "scheme",
        "fluid_online_per_file",
        "sim_online_per_file",
        "fluid_download_per_file",
        "sim_download_per_file",
    )
    rows: list[tuple] = []
    for p in sim_points:
        corr = CorrelationModel(num_files=params.num_files, p=p, visit_rate=visit_rate)
        fluid = {
            Scheme.MTCD: MTCDModel.from_correlation(params, corr).system_metrics(),
            Scheme.MTSD: MTSDModel.from_correlation(params, corr).system_metrics(),
        }
        for scheme in (Scheme.MTCD, Scheme.MTSD):
            summary = run_scenario(
                ScenarioConfig(
                    scheme=scheme,
                    params=params,
                    correlation=corr,
                    t_end=t_end,
                    warmup=warmup,
                    seed=seed,
                )
            )
            if scheme is Scheme.MTSD:
                # The fluid's download time per file is the *transfer* time
                # T; the user-level wall clock also contains the inter-file
                # seeding phases, so compare per-entry transfer times.
                sim_download = float(
                    np.nanmean(summary.entry_download_time_by_class)
                )
            else:
                sim_download = summary.avg_download_time_per_file
            rows.append(
                (
                    p,
                    scheme.value,
                    fluid[scheme].avg_online_time_per_file,
                    summary.avg_online_time_per_file,
                    fluid[scheme].avg_download_time_per_file,
                    sim_download,
                )
            )

    # Fluid curves for the overlay.
    curve_p = np.linspace(0.05, 1.0, 25)
    mtcd_curve, mtsd_curve = [], []
    for p in curve_p:
        corr = CorrelationModel(num_files=params.num_files, p=float(p))
        mtcd_curve.append(
            MTCDModel.from_correlation(params, corr).system_metrics().avg_online_time_per_file
        )
        mtsd_curve.append(
            MTSDModel.from_correlation(params, corr).system_metrics().avg_online_time_per_file
        )

    table = format_table(
        headers,
        rows,
        title=(
            "Figure 2 with simulation overlay "
            f"(lambda0={visit_rate}, horizon={t_end}, warmup={warmup})"
        ),
    )
    sim_mtcd = [(r[0], r[3]) for r in rows if r[1] == "MTCD"]
    sim_mtsd = [(r[0], r[3]) for r in rows if r[1] == "MTSD"]
    plot = ascii_plot(
        {
            "MTCD fluid": (curve_p, np.asarray(mtcd_curve)),
            "MTSD fluid": (curve_p, np.asarray(mtsd_curve)),
            "MTCD sim": (
                np.asarray([x for x, _ in sim_mtcd]),
                np.asarray([y for _, y in sim_mtcd]),
            ),
            "MTSD sim": (
                np.asarray([x for x, _ in sim_mtsd]),
                np.asarray([y for _, y in sim_mtsd]),
            ),
        },
        title="Figure 2 (fluid curves + simulated points)",
        xlabel="file correlation p",
        ylabel="avg online time per file",
    )
    worst_dl = max(abs(r[5] - r[4]) / r[4] for r in rows)
    notes = (
        f"Simulated download times land on the fluid curves within "
        f"{worst_dl:.1%} worst-case; the MTCD online points sit a few "
        "percent above the fluid (max-of-exponential seeding, documented in "
        "the validation experiment)."
    )
    return ExperimentResult(
        experiment_id="figure2sim",
        title="Figure 2 with discrete-event simulation overlay (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="overlay",
                series={
                    "MTCD fluid": (tuple(curve_p), tuple(mtcd_curve)),
                    "MTSD fluid": (tuple(curve_p), tuple(mtsd_curve)),
                    "MTCD sim": (
                        tuple(x for x, _ in sim_mtcd),
                        tuple(y for _, y in sim_mtcd),
                    ),
                    "MTSD sim": (
                        tuple(x for x, _ in sim_mtsd),
                        tuple(y for _, y in sim_mtsd),
                    ),
                },
                title="Figure 2 (reproduced, with simulation overlay)",
                xlabel="file correlation p",
                ylabel="avg online time per file",
            ),
        ),
    )
