"""Piece-deadline streaming on the chunk engine (extension, Rodrigues 2014).

BitTorrent's rarest-first piece selection maximises piece diversity but is
oblivious to playback order; streaming derivatives pick pieces (nearly) in
index order so the file can be consumed while downloading.  This
experiment runs the same flash-crowd swarm under both policies (declared
through the scenario DSL's ``chunks.piece_selection`` /  ``streaming``
sections -- ``examples/deadlines.yaml`` is the document form) and measures
the *deadline miss rate*: the fraction of (peer, piece) pairs whose piece
completed after its playback instant, as a function of the startup delay.

Expected shape: *strict* in-order selection serves playback order but
collapses swarm-wide piece diversity -- everyone holds the same prefix, so
peers have little to trade and the whole swarm slows down by several x.
At default parameters that swamps the ordering benefit: rarest-first
finishes so much earlier that its miss rate is lower at every startup
delay, which is exactly why real streaming derivatives use windowed or
probabilistic hybrids rather than strict sequential picking.  One swarm
run answers every delay -- per-piece completion times are recorded once
and the deadline grid is evaluated after the fact.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.chunks import ChunkSwarmConfig
from repro.chunks.measurement import measure_deadline_misses
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]

_POLICIES = ("in_order", "rarest")


def run(
    *,
    n_peers: int = 20,
    n_seeds: int = 2,
    n_chunks: int = 60,
    upload_rate: float = 0.02,
    playback_rate: float = 0.004,
    n_delays: int = 9,
    seed: int = 0,
) -> ExperimentResult:
    """Miss-rate curves for in-order vs rarest-first piece selection."""
    if n_delays < 2:
        raise ValueError(f"n_delays must be >= 2, got {n_delays}")
    if playback_rate <= 0:
        raise ValueError(f"playback_rate must be positive, got {playback_rate}")
    # Sweep startup delays over one full playback duration: by its end a
    # peer that finished within the playback window can never miss.
    playback_duration = 1.0 / playback_rate
    delays = tuple(float(d) for d in np.linspace(0.0, playback_duration, n_delays))

    results = {}
    for policy in _POLICIES:
        results[policy] = measure_deadline_misses(
            n_peers=n_peers,
            n_seeds=n_seeds,
            config=ChunkSwarmConfig(
                n_chunks=n_chunks,
                upload_rate=upload_rate,
                piece_selection=policy,
            ),
            playback_rate=playback_rate,
            startup_delays=delays,
            seed=seed,
        )

    headers = ("startup_delay", *(f"miss_rate_{p}" for p in _POLICIES))
    rows = tuple(
        (delay, *(results[p].miss_rates[i] for p in _POLICIES))
        for i, delay in enumerate(delays)
    )
    table = format_table(
        headers,
        rows,
        title=(
            f"Deadline miss rate vs startup delay "
            f"({n_peers} peers, {n_chunks} chunks, playback rate {playback_rate})"
        ),
    )
    summary = format_table(
        ("policy", "mean_download_time", "rounds"),
        [
            (p, results[p].mean_download_time, float(results[p].rounds))
            for p in _POLICIES
        ],
        title="throughput cost of the piece policy",
    )

    figure = FigureSpec(
        name="miss_rate",
        series={p: (delays, results[p].miss_rates) for p in _POLICIES},
        title="Streaming deadline miss rate vs startup delay",
        xlabel="startup delay",
        ylabel="deadline miss rate",
    )

    slowdown = (
        results["in_order"].mean_download_time
        / results["rarest"].mean_download_time
    )
    miss0 = {p: results[p].miss_rates[0] for p in _POLICIES}
    notes = (
        f"Strict in-order picking costs the swarm {slowdown:.2f}x in mean "
        "download time: with every peer holding the same prefix there is "
        "little left to trade, and the diversity collapse swamps the "
        f"ordering benefit -- at zero startup delay in-order misses "
        f"{miss0['in_order']:.0%} of deadlines vs {miss0['rarest']:.0%} for "
        "rarest-first, which therefore dominates at every swept delay. "
        "This is why real streaming derivatives use windowed or "
        "probabilistic hybrids instead of strict sequential selection. "
        "Scenario sections are the DSL's chunks/streaming blocks "
        "(examples/deadlines.yaml runs the in_order side)."
    )
    return ExperimentResult(
        experiment_id="deadlines",
        title="Piece-deadline streaming: in-order vs rarest-first (extension)",
        headers=headers,
        rows=rows,
        rendered=f"{table}\n\n{summary}\n\n{notes}",
        notes=notes,
        figures=(figure,),
    )
