"""Flash-crowd experiment (extension): how fast does a burst drain?

The paper's models are evaluated at steady state only; publication day is
a transient.  This experiment drops a burst of ``n_users`` (classed by the
Sec.-4.1 workload at high correlation) into a freshly published multi-file
torrent with **no seeds and no further arrivals**, and integrates the
Eq.-(1)/(5) dynamics to measure how quickly the burst completes under

* MFCD (concurrent, the Eq.-(1)/(2) dynamics of today's clients), and
* CMFSD at several collaboration ratios rho.

Expected shape: collaboration accelerates the drain -- peers that finish a
file early turn their upload into virtual-seed capacity precisely when the
swarm has no real seeds yet -- and the effect strengthens as rho falls.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel
from repro.core.correlation import CorrelationModel
from repro.core.mfcd import MFCDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.core.transient import (
    cmfsd_flash_crowd_state,
    drain_profile,
    mtcd_flash_crowd_state,
)
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    p: float = 0.9,
    n_users: float = 200.0,
    rho_values: tuple[float, ...] = (0.0, 0.5, 1.0),
    horizon: float = 6000.0,
) -> ExperimentResult:
    """Drain a flash crowd under MFCD and CMFSD(rho) and compare quantiles."""
    if n_users <= 0:
        raise ValueError(f"n_users must be positive, got {n_users}")
    if params.download_bandwidth is None:
        # Drain transients need the positivity-preserving Qiu--Srikant
        # service cap; 10x the upload link keeps the paper's
        # "download >> upload" premise while bounding the boundary layer.
        params = params.with_(download_bandwidth=10.0 * params.mu)
    corr = CorrelationModel(num_files=params.num_files, p=p)
    zero_rates = np.zeros(params.num_files)

    profiles: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    rows: list[tuple] = []

    # --- MFCD: Eq.-(1) dynamics over the K subtorrents, zero arrivals ----------
    mfcd = MFCDModel(params=params, class_rates=zero_rates)
    mtcd = mfcd.as_mtcd()
    # Build the per-subtorrent burst from the *workload's* class mix.  The
    # Eq.-(1) state counts virtual peers per subtorrent; weighting class i
    # by K/i converts back to outstanding users (a class-i user has i
    # entries spread over the K symmetric subtorrents).
    y0 = mtcd_flash_crowd_state(mtcd, corr, n_users)
    i = np.arange(1, params.num_files + 1, dtype=float)
    profile = drain_profile(
        mtcd.rhs,
        y0,
        slice(0, params.num_files),
        horizon=horizon,
        weights=params.num_files / i,
    )
    profiles["MFCD"] = (profile.times, profile.outstanding)
    rows.append(("MFCD", np.nan, profile.t50, profile.t95))

    # --- CMFSD at each rho -------------------------------------------------------
    for rho in rho_values:
        model = CMFSDModel(params=params, class_rates=zero_rates, rho=rho)
        y0 = cmfsd_flash_crowd_state(model, corr, n_users)
        profile = drain_profile(
            model.rhs, y0, slice(0, model.index.n_pairs), horizon=horizon
        )
        profiles[f"CMFSD rho={rho}"] = (profile.times, profile.outstanding)
        rows.append((f"CMFSD", rho, profile.t50, profile.t95))

    headers = ("scheme", "rho", "t50", "t95")
    table = format_table(
        headers,
        rows,
        title=(
            f"Flash crowd of {n_users:.0f} users (p={p}, no seeds, no further "
            "arrivals): time for 50% / 95% of downloaders to finish"
        ),
    )
    plot = ascii_plot(
        profiles,
        title="Outstanding downloaders during the drain",
        xlabel="time",
        ylabel="downloaders remaining",
    )
    t95 = {((r[0], r[1])): r[3] for r in rows}
    speedup = t95[("MFCD", np.nan)] / t95[("CMFSD", rho_values[0])] if rows else 1.0
    notes = (
        f"Collaboration drains the crowd {speedup:.2f}x faster at "
        f"rho={rho_values[0]} than MFCD; virtual seeds substitute for the "
        "missing real seeds exactly when a fresh torrent needs them most."
    )
    return ExperimentResult(
        experiment_id="flashcrowd",
        title="Flash-crowd drain: MFCD vs CMFSD (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="drain",
                series={k: (tuple(v[0]), tuple(v[1])) for k, v in profiles.items()},
                title=f"Flash-crowd drain ({n_users:.0f} users, p={p})",
                xlabel="time",
                ylabel="downloaders remaining",
            ),
        ),
    )
