"""Figure 2: average online time per file vs file correlation, MTCD vs MTSD.

The paper's headline multi-torrent result: with ``K=10, mu=0.02, eta=0.5,
gamma=0.05``, MTSD is flat at ``T + 1/gamma = 80`` while MTCD starts there
for uncorrelated files and degrades as correlation grows (to ``98`` at
``p = 1``).  Expected shape: the curves coincide at ``p -> 0`` and MTCD
increases monotonically.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.correlation import CorrelationModel
from repro.core.mtcd import MTCDModel
from repro.core.mtsd import MTSDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec, rows_from_columns

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    p_values: np.ndarray | None = None,
) -> ExperimentResult:
    """Sweep the file correlation and evaluate both multi-torrent schemes."""
    if p_values is None:
        p_values = np.linspace(0.01, 1.0, 34)
    p_values = np.asarray(p_values, dtype=float)
    if np.any((p_values <= 0) | (p_values > 1)):
        raise ValueError("p values must lie in (0, 1]")

    mtcd_online = np.empty_like(p_values)
    mtsd_online = np.empty_like(p_values)
    mtcd_download = np.empty_like(p_values)
    mtsd_download = np.empty_like(p_values)
    for k, p in enumerate(p_values):
        corr = CorrelationModel(num_files=params.num_files, p=float(p))
        mtcd = MTCDModel.from_correlation(params, corr).system_metrics()
        mtsd = MTSDModel.from_correlation(params, corr).system_metrics()
        mtcd_online[k] = mtcd.avg_online_time_per_file
        mtsd_online[k] = mtsd.avg_online_time_per_file
        mtcd_download[k] = mtcd.avg_download_time_per_file
        mtsd_download[k] = mtsd.avg_download_time_per_file

    rows = rows_from_columns(
        [float(p) for p in p_values],
        [float(v) for v in mtcd_online],
        [float(v) for v in mtsd_online],
        [float(v) for v in mtcd_download],
        [float(v) for v in mtsd_download],
    )
    headers = (
        "p",
        "mtcd_online_per_file",
        "mtsd_online_per_file",
        "mtcd_download_per_file",
        "mtsd_download_per_file",
    )
    table = format_table(
        headers,
        rows,
        title=(
            "Figure 2: average online time per file vs file correlation "
            f"(K={params.num_files}, mu={params.mu}, eta={params.eta}, "
            f"gamma={params.gamma})"
        ),
    )
    plot = ascii_plot(
        {
            "MTCD": (p_values, mtcd_online),
            "MTSD": (p_values, mtsd_online),
        },
        title="Figure 2 (reproduced)",
        xlabel="file correlation p",
        ylabel="avg online time per file",
    )
    gap_low = mtcd_online[0] - mtsd_online[0]
    gap_high = mtcd_online[-1] - mtsd_online[-1]
    notes = (
        f"MTSD is correlation-independent at {mtsd_online[0]:.3f}; MTCD rises from "
        f"{mtcd_online[0]:.3f} (gap {gap_low:+.3f}) to {mtcd_online[-1]:.3f} "
        f"(gap {gap_high:+.3f}) -- matching the paper's 'similar at low "
        "correlation, worsens as correlation increases'."
    )
    return ExperimentResult(
        experiment_id="figure2",
        title="Figure 2: MTCD vs MTSD average online time per file",
        headers=headers,
        rows=rows,
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="online_vs_p",
                series={
                    "MTCD": (tuple(p_values), tuple(mtcd_online)),
                    "MTSD": (tuple(p_values), tuple(mtsd_online)),
                },
                title="Figure 2 (reproduced): avg online time per file",
                xlabel="file correlation p",
                ylabel="online time per file",
            ),
        ),
    )
