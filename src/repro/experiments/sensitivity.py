"""Parameter-sensitivity experiment (extension): do the conclusions hold?

Two of the paper's parameter choices deserve stress-testing:

* ``eta = 0.5`` -- the paper *disagrees* with Qiu--Srikant (who argue
  ``eta`` is near 1) and picks 0.5 from the Izal et al. measurement.  Does
  the MTSD-over-MTCD advantage and the CMFSD gain survive across the whole
  range?
* ``gamma`` -- seeds' patience.  The upload-constrained steady state needs
  ``gamma > mu``; near that boundary seeds serve almost everything and the
  scheme differences should collapse.

For each swept value this driver evaluates all four schemes at high
correlation (p = 0.9) and records the two headline ratios:
``mtcd_over_mtsd`` and ``mfcd_over_cmfsd0`` (both > 1 when the paper's
conclusions hold).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel
from repro.core.correlation import CorrelationModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.core.schemes import Scheme, evaluate_scheme
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]


def _evaluate(
    params: FluidParameters, p: float, guess: np.ndarray | None
) -> tuple[tuple[float, float, float, float], np.ndarray | None]:
    """Times of all four schemes, threading the CMFSD stationary point.

    MTCD/MTSD/MFCD have closed forms; only CMFSD needs an ODE solve, so it
    is evaluated directly and the converged state is returned for the next
    sweep point to warm-start from (``guess=None`` forces a cold solve).
    """
    corr = CorrelationModel(num_files=params.num_files, p=p)
    closed = tuple(
        evaluate_scheme(s, params, corr).avg_online_time_per_file
        for s in (Scheme.MTCD, Scheme.MTSD, Scheme.MFCD)
    )
    model = CMFSDModel.from_correlation(params, corr, rho=0.0)
    steady = model.steady_state(initial_state=guess)
    cmfsd = model.system_metrics(steady).avg_online_time_per_file
    next_guess = steady.state if steady.converged else None
    return closed + (cmfsd,), next_guess


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    p: float = 0.9,
    eta_values: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0),
    gamma_values: tuple[float, ...] = (0.022, 0.03, 0.05, 0.1, 0.2),
    warm_start: bool = True,
) -> ExperimentResult:
    """Sweep eta and gamma; record scheme times and headline ratios.

    ``warm_start`` threads each CMFSD stationary point into the next sweep
    point's Newton solve (each sweep is a continuation path); disable it
    to solve every point cold.
    """
    headers = (
        "parameter",
        "value",
        "mtcd",
        "mtsd",
        "mfcd",
        "cmfsd_rho0",
        "mtcd_over_mtsd",
        "mfcd_over_cmfsd0",
    )
    rows: list[tuple] = []
    guess: np.ndarray | None = None
    for eta in eta_values:
        (mtcd, mtsd, mfcd, cmfsd), state = _evaluate(params.with_(eta=eta), p, guess)
        if warm_start:
            guess = state
        rows.append(("eta", eta, mtcd, mtsd, mfcd, cmfsd, mtcd / mtsd, mfcd / cmfsd))
    guess = None  # gamma is a fresh sweep; don't warm-start across sweeps
    for gamma in gamma_values:
        if gamma <= params.mu:
            raise ValueError(f"gamma={gamma} violates the stability condition gamma > mu")
        (mtcd, mtsd, mfcd, cmfsd), state = _evaluate(params.with_(gamma=gamma), p, guess)
        if warm_start:
            guess = state
        rows.append(
            ("gamma", gamma, mtcd, mtsd, mfcd, cmfsd, mtcd / mtsd, mfcd / cmfsd)
        )

    table = format_table(
        headers,
        rows,
        title=f"Sensitivity of the scheme comparison at p={p} "
        f"(baseline mu={params.mu}, eta={params.eta}, gamma={params.gamma})",
    )
    eta_rows = [r for r in rows if r[0] == "eta"]
    gamma_rows = [r for r in rows if r[0] == "gamma"]
    plot = ascii_plot(
        {
            "MTCD/MTSD vs eta": (
                np.array([r[1] for r in eta_rows]),
                np.array([r[6] for r in eta_rows]),
            ),
            "MFCD/CMFSD vs eta": (
                np.array([r[1] for r in eta_rows]),
                np.array([r[7] for r in eta_rows]),
            ),
        },
        title="Headline ratios across the eta sweep (>1 = paper's conclusion holds)",
        xlabel="eta",
        ylabel="ratio",
        height=14,
    )
    notes = (
        "Both conclusions -- sequential beats concurrent across torrents, and "
        "collaboration beats MFCD inside a torrent -- hold strictly for every "
        "eta < 1 and every stable gamma tested, with margins growing as eta "
        "falls (tit-for-tat inefficiency makes donated seed capacity more "
        "valuable) and shrinking as gamma grows (patient seeds already serve "
        "everyone).  At the Qiu--Srikant endpoint eta = 1 all four schemes "
        "coincide exactly: if downloaders upload as efficiently as seeds, "
        "neither sequencing nor virtual seeding can add anything -- the "
        "paper's whole case rests on its eta = 0.5 measurement argument."
    )
    eta_x = tuple(r[1] for r in eta_rows)
    return ExperimentResult(
        experiment_id="sensitivity",
        title="Parameter sensitivity of the paper's conclusions (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="ratios_vs_eta",
                series={
                    "MTCD/MTSD": (eta_x, tuple(r[6] for r in eta_rows)),
                    "MFCD/CMFSD(0)": (eta_x, tuple(r[7] for r in eta_rows)),
                },
                title="Headline ratios vs eta (1 = schemes tie)",
                xlabel="eta",
                ylabel="online-time ratio",
            ),
        ),
    )
