"""Differentiated-service bandwidth tiers (extension, Zhang et al. 2012).

Commercial and community trackers sell *service tiers*: premium users get
more upload (and often longer-seeding) capacity than economy users sharing
the same swarm.  This experiment expresses such a mix as a declarative
scenario (:mod:`repro.scenario` -- the same document shape as
``examples/tiers.yaml``) and compiles it onto the Sec.-2 heterogeneous
fluid model to answer two questions:

* how large is the service gap -- per-tier steady-state download times for
  a premium / standard / economy mix, and
* who benefits when premium capacity grows -- the premium upload rate is
  swept upward and *every* tier's download time is tracked.  Upload
  capacity is a club good in BitTorrent: the sweep shows the economy
  tier's time falling as premium peers inject more capacity into the
  common pool, while the premium tier's own time is bounded below by its
  download link.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, FigureSpec
from repro.scenario import (
    ParamsSpec,
    ScenarioSpec,
    TierSpec,
    WorkloadSpec,
    compile_fluid,
)
from repro.core.schemes import Scheme

__all__ = ["run", "build_spec"]


def build_spec(*, premium_upload: float = 0.04) -> ScenarioSpec:
    """The three-tier scenario, as a DSL document built in code.

    Mirrors ``examples/tiers.yaml``; ``premium_upload`` is the sweep knob.
    """
    return ScenarioSpec(
        name="tiers",
        description=(
            "Differentiated-service bandwidth tiers: premium / standard / "
            "economy upload classes in one swarm."
        ),
        scheme=Scheme.MTSD,
        workload=WorkloadSpec(p=0.8, visit_rate=0.5),
        params=ParamsSpec(mu=0.02, eta=0.5, gamma=0.05, num_files=5),
        tiers=(
            TierSpec(name="premium", upload=premium_upload, download=0.2, share=0.2),
            TierSpec(name="standard", upload=0.02, download=0.1, share=0.5),
            TierSpec(name="economy", upload=0.01, download=0.05, share=0.3),
        ),
    )


def _tier_times(spec: ScenarioSpec) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(downloaders, seeds, download times) per tier at the steady state."""
    model = compile_fluid(spec)
    result = model.steady_state_numeric()
    if not result.converged:
        raise RuntimeError("heterogeneous steady state failed to converge")
    S = model.num_classes
    times = model.download_times_from_state(result.state)
    return result.state[:S], result.state[S:], np.asarray(times)


def run(
    *,
    premium_uploads: tuple[float, ...] = (0.02, 0.03, 0.04, 0.06, 0.08),
    base_premium_upload: float = 0.04,
) -> ExperimentResult:
    """Tiered mix at the base point, plus the premium-upload sweep."""
    if not premium_uploads:
        raise ValueError("need at least one premium upload value")
    base = build_spec(premium_upload=base_premium_upload)
    downloaders, seeds, base_times = _tier_times(base)
    tier_names = [t.name for t in base.tiers]

    base_rows = tuple(
        (
            t.name,
            t.upload,
            t.download,
            t.share,
            float(downloaders[i]),
            float(seeds[i]),
            float(base_times[i]),
        )
        for i, t in enumerate(base.tiers)
    )
    base_table = format_table(
        ("tier", "upload", "download", "share", "downloaders", "seeds", "download_time"),
        base_rows,
        title=(
            f"Steady state of the tiered mix "
            f"(premium upload {base_premium_upload}, eta={base.params.eta})"
        ),
    )

    headers = ("premium_upload", *(f"time_{name}" for name in tier_names))
    sweep: list[tuple] = []
    for upload in premium_uploads:
        _, _, times = _tier_times(build_spec(premium_upload=upload))
        sweep.append((float(upload), *(float(t) for t in times)))
    rows = tuple(sweep)
    sweep_table = format_table(
        headers,
        rows,
        title="Per-tier download time vs premium upload bandwidth",
    )

    xs = tuple(r[0] for r in rows)
    figure = FigureSpec(
        name="tier_times",
        series={
            name: (xs, tuple(r[1 + i] for r in rows))
            for i, name in enumerate(tier_names)
        },
        title="Download time per tier vs premium upload bandwidth",
        xlabel="premium tier upload bandwidth",
        ylabel="download time",
    )

    first, last = rows[0], rows[-1]
    econ = 1 + tier_names.index("economy")
    prem = 1 + tier_names.index("premium")
    notes = (
        f"The service gap at the base point is "
        f"{base_times[-1] / base_times[0]:.1f}x between economy and premium. "
        f"Raising premium upload {first[0]:g} -> {last[0]:g} cuts the premium "
        f"tier's own time by {1 - last[prem] / first[prem]:.0%} and -- upload "
        "being a club good -- the economy tier's by "
        f"{1 - last[econ] / first[econ]:.0%} without buying anything: extra "
        "premium capacity lands in the shared service pool. Scenario built "
        "with the repro.scenario DSL (examples/tiers.yaml is the same "
        "document in YAML)."
    )
    return ExperimentResult(
        experiment_id="tiers",
        title="Differentiated-service bandwidth tiers (extension)",
        headers=headers,
        rows=rows,
        rendered=f"{base_table}\n\n{sweep_table}\n\n{notes}",
        notes=notes,
        figures=(figure,),
    )
