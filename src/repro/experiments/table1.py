"""Table 1: the fluid-model parameter glossary with the paper's values."""

from __future__ import annotations

from repro.core.parameters import (
    FluidParameters,
    PAPER_PARAMETERS,
    TABLE1_GLOSSARY,
    format_table1,
)
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(params: FluidParameters = PAPER_PARAMETERS) -> ExperimentResult:
    """Reproduce Table 1 (parameter definitions + evaluation values)."""
    rows = tuple((symbol, meaning) for symbol, meaning in TABLE1_GLOSSARY)
    rendered = format_table1(params)
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: Parameters in the BitTorrent fluid model",
        headers=("symbol", "meaning"),
        rows=rows,
        rendered=rendered,
        notes=(
            "Static glossary; the evaluation section fixes "
            f"mu={params.mu}, eta={params.eta}, gamma={params.gamma}, "
            f"K={params.num_files}."
        ),
    )
