"""Experiment id -> driver mapping used by the CLI and the benches."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    adapt_study,
    concurrency,
    eta_measurement,
    fairness,
    figure2,
    figure2sim,
    figure3,
    figure4a,
    figure4bc,
    flashcrowd,
    heterogeneity,
    lifetime,
    mixing,
    sensitivity,
    table1,
    validation,
)
from repro.experiments.base import ExperimentResult

__all__ = [
    "REGISTRY",
    "get_experiment",
    "list_experiments",
    "register_experiment",
]

#: experiment id -> (driver, one-line description)
REGISTRY: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "table1": (table1.run, "Table 1: fluid-model parameter glossary"),
    "figure2": (figure2.run, "Fig. 2: avg online time/file vs correlation, MTCD vs MTSD"),
    "figure3": (figure3.run, "Fig. 3: per-class times, MTCD vs MTSD (p=0.1, 1.0)"),
    "figure4a": (figure4a.run, "Fig. 4a: CMFSD online time/file over the (p, rho) grid"),
    "figure4bc": (figure4bc.run, "Fig. 4b/c: per-class times, CMFSD vs MFCD (p=0.9, 0.1)"),
    "adapt": (adapt_study.run, "Adapt mechanism study (paper future work)"),
    "validation": (validation.run, "Simulator vs fluid cross-validation"),
    "flashcrowd": (flashcrowd.run, "Extension: flash-crowd drain, MFCD vs CMFSD"),
    "sensitivity": (sensitivity.run, "Extension: eta/gamma sensitivity of the conclusions"),
    "heterogeneity": (heterogeneity.run, "Extension: Sec.-2 general model on an access-link mix"),
    "eta": (eta_measurement.run, "Extension: measure eta with a chunk-level swarm"),
    "concurrency": (concurrency.run, "Extension: active-torrent limit sweep (MTSD->MTCD)"),
    "mixing": (mixing.run, "Extension: full-mixing assumption vs tracker numwant"),
    "figure2sim": (figure2sim.run, "Extension: Fig. 2 fluid curves + DES overlay points"),
    "fairness": (fairness.run, "Extension: Jain fairness vs efficiency frontier"),
    "lifetime": (lifetime.run, "Extension: torrent lifetime under decaying arrivals"),
}


def register_experiment(
    experiment_id: str,
    driver: Callable[..., ExperimentResult],
    description: str = "",
    *,
    replace: bool = False,
) -> None:
    """Register an extra driver at runtime (plugins, fault-injection tests).

    The runner's pool workers look drivers up by id inside the worker, so
    with fork-started pools a runtime-registered driver runs under
    ``--jobs N`` too.  Registering over an existing id raises unless
    ``replace=True``.
    """
    if not replace and experiment_id in REGISTRY:
        raise ValueError(f"experiment {experiment_id!r} is already registered")
    REGISTRY[experiment_id] = (driver, description)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a driver; raises ``KeyError`` with the available ids."""
    try:
        return REGISTRY[experiment_id][0]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(REGISTRY)}"
        ) from None


def list_experiments() -> list[tuple[str, str]]:
    """``(id, description)`` pairs in registry order."""
    return [(eid, desc) for eid, (_, desc) in REGISTRY.items()]
