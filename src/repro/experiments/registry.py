"""Experiment id -> driver mapping used by the CLI and the benches."""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.experiments import (
    adapt_study,
    concurrency,
    deadlines,
    eta_measurement,
    fairness,
    figure2,
    figure2sim,
    figure3,
    figure4a,
    figure4bc,
    flashcrowd,
    heterogeneity,
    lifetime,
    mixing,
    sensitivity,
    table1,
    tiers,
    validation,
)
from repro.experiments.base import ExperimentResult

__all__ = [
    "REGISTRY",
    "get_experiment",
    "list_experiments",
    "register_experiment",
]

#: experiment id -> (driver, one-line description)
REGISTRY: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "table1": (table1.run, "Table 1: fluid-model parameter glossary"),
    "figure2": (figure2.run, "Fig. 2: avg online time/file vs correlation, MTCD vs MTSD"),
    "figure3": (figure3.run, "Fig. 3: per-class times, MTCD vs MTSD (p=0.1, 1.0)"),
    "figure4a": (figure4a.run, "Fig. 4a: CMFSD online time/file over the (p, rho) grid"),
    "figure4bc": (figure4bc.run, "Fig. 4b/c: per-class times, CMFSD vs MFCD (p=0.9, 0.1)"),
    "adapt": (adapt_study.run, "Adapt mechanism study (paper future work)"),
    "validation": (validation.run, "Simulator vs fluid cross-validation"),
    "flashcrowd": (flashcrowd.run, "Extension: flash-crowd drain, MFCD vs CMFSD"),
    "sensitivity": (sensitivity.run, "Extension: eta/gamma sensitivity of the conclusions"),
    "heterogeneity": (heterogeneity.run, "Extension: Sec.-2 general model on an access-link mix"),
    "eta": (eta_measurement.run, "Extension: measure eta with a chunk-level swarm"),
    "concurrency": (concurrency.run, "Extension: active-torrent limit sweep (MTSD->MTCD)"),
    "mixing": (mixing.run, "Extension: full-mixing assumption vs tracker numwant"),
    "figure2sim": (figure2sim.run, "Extension: Fig. 2 fluid curves + DES overlay points"),
    "fairness": (fairness.run, "Extension: Jain fairness vs efficiency frontier"),
    "lifetime": (lifetime.run, "Extension: torrent lifetime under decaying arrivals"),
    "tiers": (tiers.run, "Extension: differentiated-service upload tiers (DSL scenario)"),
    "deadlines": (deadlines.run, "Extension: streaming piece-deadline misses, in-order vs rarest"),
}


def _spec_driver(
    experiment_id: str, spec_path: str | Path
) -> tuple[Callable[..., ExperimentResult], str]:
    """Build a driver that runs a scenario-spec document end to end.

    The document is loaded (and therefore fully validated) *now*, at
    registration time, so typos fail at ``register_experiment`` rather
    than mid-run; the driver re-reads the file at each execution so later
    edits take effect.  Note the result cache keys on the package source
    only -- after editing a registered spec file, re-run with ``--force``.
    """
    from repro.scenario import load_spec, run_spec

    path = Path(spec_path)
    loaded = load_spec(path)

    def driver() -> ExperimentResult:
        return run_spec(load_spec(path), experiment_id=experiment_id)

    return driver, loaded.description or f"scenario spec {path.name}"


def register_experiment(
    experiment_id: str,
    driver: Callable[..., ExperimentResult] | None = None,
    description: str = "",
    *,
    spec: str | Path | None = None,
    replace: bool = False,
) -> None:
    """Register an extra driver at runtime (plugins, fault-injection tests).

    Pass either a ``driver`` callable or ``spec=`` (a path to a scenario
    DSL document, YAML or JSON -- see :mod:`repro.scenario`); a spec is
    validated immediately and wrapped in a driver that runs it end to end
    via :func:`repro.scenario.run_spec`.  When ``description`` is empty, a
    spec's own ``description`` field is used.

    The runner's pool workers look drivers up by id inside the worker, so
    with fork-started pools a runtime-registered driver runs under
    ``--jobs N`` too.  Registering over an existing id raises unless
    ``replace=True``.
    """
    if (driver is None) == (spec is None):
        raise ValueError("pass exactly one of 'driver' or 'spec'")
    if spec is not None:
        driver, spec_description = _spec_driver(experiment_id, spec)
        description = description or spec_description
    if not replace and experiment_id in REGISTRY:
        raise ValueError(f"experiment {experiment_id!r} is already registered")
    REGISTRY[experiment_id] = (driver, description)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a driver; raises ``KeyError`` with the available ids."""
    try:
        return REGISTRY[experiment_id][0]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(REGISTRY)}"
        ) from None


def list_experiments() -> list[tuple[str, str]]:
    """``(id, description)`` pairs in registry order."""
    return [(eid, desc) for eid, (_, desc) in REGISTRY.items()]


def format_experiment_table() -> str:
    """The id/description table shown by ``repro list`` and ``run --help``.

    Generated from the registry at call time, so the help text can never
    drift from the experiments that actually exist (including ones added
    via :func:`register_experiment`).
    """
    pairs = list_experiments()
    width = max((len(eid) for eid, _ in pairs), default=0)
    return "\n".join(f"{eid:<{width}}  {desc}" for eid, desc in pairs)
