"""Shared result containers for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.svg_plot import svg_heatmap, write_svg
from repro.analysis.tables import write_csv

__all__ = ["ExperimentResult", "FigureSpec", "HeatmapSpec"]


@dataclass(frozen=True)
class FigureSpec:
    """One renderable line chart attached to an experiment result.

    ``series`` maps legend names to ``(xs, ys)``; drivers attach these so
    the CLI/report can emit browser-viewable SVGs next to the CSVs.
    """

    name: str
    series: Mapping[str, tuple]
    title: str = ""
    xlabel: str = ""
    ylabel: str = ""


@dataclass(frozen=True)
class HeatmapSpec:
    """One renderable heat map attached to an experiment result."""

    name: str
    grid: tuple
    row_labels: tuple
    col_labels: tuple
    title: str = ""
    row_name: str = "row"
    col_name: str = "col"


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Registry key (``figure2``, ``table1``, ...).
    title:
        Human-readable description referencing the paper artifact.
    headers / rows:
        The reproduced numeric series in tabular form -- the exact data the
        paper's figure plots.
    rendered:
        Full text report (tables, ASCII plots, shape checks) as printed by
        the CLI.
    notes:
        Caveats and expected-shape commentary recorded alongside the data.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...] = field(repr=False)
    rendered: str = field(repr=False, default="")
    notes: str = ""
    figures: tuple[FigureSpec, ...] = ()

    def write_csv(self, directory: str | Path) -> Path:
        """Write the series to ``<directory>/<experiment_id>.csv``."""
        return write_csv(
            Path(directory) / f"{self.experiment_id}.csv", self.headers, self.rows
        )

    def write_figures(self, directory: str | Path) -> list[Path]:
        """Render the attached figures as SVG files; returns their paths."""
        paths = []
        for fig in self.figures:
            path = Path(directory) / f"{self.experiment_id}_{fig.name}.svg"
            path.parent.mkdir(parents=True, exist_ok=True)
            if isinstance(fig, HeatmapSpec):
                path.write_text(
                    svg_heatmap(
                        fig.grid,
                        row_labels=fig.row_labels,
                        col_labels=fig.col_labels,
                        title=fig.title,
                        row_name=fig.row_name,
                        col_name=fig.col_name,
                    )
                )
                paths.append(path)
            else:
                paths.append(
                    write_svg(
                        path,
                        fig.series,
                        title=fig.title,
                        xlabel=fig.xlabel,
                        ylabel=fig.ylabel,
                    )
                )
        return paths

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {list(self.headers)}"
            ) from None
        return [row[idx] for row in self.rows]


def rows_from_columns(*columns: Sequence) -> tuple[tuple, ...]:
    """Zip equal-length columns into result rows."""
    lengths = {len(c) for c in columns}
    if len(lengths) > 1:
        raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
    return tuple(zip(*columns))
