"""Shared result containers for experiment drivers.

``ExperimentResult`` round-trips losslessly to/from plain-JSON dictionaries
(:meth:`ExperimentResult.to_dict` / :meth:`ExperimentResult.from_dict`) so
the runner's on-disk cache can replay an experiment without re-executing
its driver.  Figures share the :class:`FigureBase` root: line charts are
:class:`FigureSpec`, heat maps :class:`HeatmapSpec`, and both serialize
with a ``kind`` discriminator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.svg_plot import svg_heatmap, write_svg
from repro.analysis.tables import write_csv

__all__ = [
    "ExperimentResult",
    "FigureBase",
    "FigureSpec",
    "HeatmapSpec",
    "figure_from_dict",
]


def _jsonable(value: Any) -> Any:
    """Recursively convert a result payload to JSON-serializable types.

    Tuples become lists, numpy scalars/arrays become python numbers/lists;
    mappings keep (stringified) keys.  Anything already JSON-native passes
    through untouched.
    """
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # numpy scalars and arrays expose .item()/.tolist(); duck-type so this
    # module keeps working for pure-python payloads too.
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (str, bytes)):
        tolist = getattr(value, "tolist", None)
        if tolist is not None:
            converted = tolist()
            return _jsonable(converted) if isinstance(converted, list) else converted
        return item()
    return value


@dataclass(frozen=True)
class FigureBase:
    """Common base for renderable figures attached to an experiment result.

    Concrete kinds (:class:`FigureSpec` line charts, :class:`HeatmapSpec`
    heat maps) subclass this so ``ExperimentResult.figures`` is uniformly
    typed and :meth:`ExperimentResult.write_figures` / the cache serializer
    can dispatch on the actual class.
    """

    name: str

    def to_dict(self) -> dict:  # pragma: no cover - overridden by subclasses
        raise NotImplementedError("use a concrete figure kind")


@dataclass(frozen=True)
class FigureSpec(FigureBase):
    """One renderable line chart attached to an experiment result.

    ``series`` maps legend names to ``(xs, ys)``; drivers attach these so
    the CLI/report can emit browser-viewable SVGs next to the CSVs.
    """

    series: Mapping[str, tuple] = field(default_factory=dict)
    title: str = ""
    xlabel: str = ""
    ylabel: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": "line",
            "name": self.name,
            "series": _jsonable(self.series),
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FigureSpec":
        return cls(
            name=payload["name"],
            series={
                label: tuple(tuple(axis) for axis in xy)
                for label, xy in payload["series"].items()
            },
            title=payload.get("title", ""),
            xlabel=payload.get("xlabel", ""),
            ylabel=payload.get("ylabel", ""),
        )


@dataclass(frozen=True)
class HeatmapSpec(FigureBase):
    """One renderable heat map attached to an experiment result."""

    grid: tuple = ()
    row_labels: tuple = ()
    col_labels: tuple = ()
    title: str = ""
    row_name: str = "row"
    col_name: str = "col"

    def to_dict(self) -> dict:
        return {
            "kind": "heatmap",
            "name": self.name,
            "grid": _jsonable(self.grid),
            "row_labels": _jsonable(self.row_labels),
            "col_labels": _jsonable(self.col_labels),
            "title": self.title,
            "row_name": self.row_name,
            "col_name": self.col_name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HeatmapSpec":
        return cls(
            name=payload["name"],
            grid=tuple(tuple(row) for row in payload["grid"]),
            row_labels=tuple(payload["row_labels"]),
            col_labels=tuple(payload["col_labels"]),
            title=payload.get("title", ""),
            row_name=payload.get("row_name", "row"),
            col_name=payload.get("col_name", "col"),
        )


#: serialized ``kind`` -> concrete figure class
_FIGURE_KINDS: dict[str, type[FigureBase]] = {
    "line": FigureSpec,
    "heatmap": HeatmapSpec,
}


def figure_from_dict(payload: Mapping) -> FigureBase:
    """Rebuild a figure spec from its serialized form (``kind`` dispatch)."""
    kind = payload.get("kind")
    try:
        cls = _FIGURE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown figure kind {kind!r}; expected one of {sorted(_FIGURE_KINDS)}"
        ) from None
    return cls.from_dict(payload)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Registry key (``figure2``, ``table1``, ...).
    title:
        Human-readable description referencing the paper artifact.
    headers / rows:
        The reproduced numeric series in tabular form -- the exact data the
        paper's figure plots.
    rendered:
        Full text report (tables, ASCII plots, shape checks) as printed by
        the CLI.
    notes:
        Caveats and expected-shape commentary recorded alongside the data.
    obs:
        Optional observability snapshot (a
        :meth:`repro.obs.MetricsRegistry.to_dict` payload) captured while
        the driver ran under profiling.  ``None`` for un-profiled runs;
        never part of the CSV/figure outputs, so enabling profiling leaves
        those bytes untouched.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...] = field(repr=False)
    rendered: str = field(repr=False, default="")
    notes: str = ""
    figures: tuple[FigureBase, ...] = ()
    obs: Mapping | None = field(repr=False, compare=False, default=None)

    def write_csv(self, directory: str | Path) -> Path:
        """Write the series to ``<directory>/<experiment_id>.csv``."""
        return write_csv(
            Path(directory) / f"{self.experiment_id}.csv", self.headers, self.rows
        )

    def write_figures(self, directory: str | Path) -> list[Path]:
        """Render the attached figures as SVG files; returns their paths."""
        paths = []
        for fig in self.figures:
            path = Path(directory) / f"{self.experiment_id}_{fig.name}.svg"
            path.parent.mkdir(parents=True, exist_ok=True)
            if isinstance(fig, HeatmapSpec):
                path.write_text(
                    svg_heatmap(
                        fig.grid,
                        row_labels=fig.row_labels,
                        col_labels=fig.col_labels,
                        title=fig.title,
                        row_name=fig.row_name,
                        col_name=fig.col_name,
                    )
                )
                paths.append(path)
            else:
                paths.append(
                    write_svg(
                        path,
                        fig.series,
                        title=fig.title,
                        xlabel=fig.xlabel,
                        ylabel=fig.ylabel,
                    )
                )
        return paths

    def to_dict(self) -> dict:
        """Serialize to a JSON-safe dict (see :meth:`from_dict`)."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": _jsonable(self.rows),
            "rendered": self.rendered,
            "notes": self.notes,
            "figures": [fig.to_dict() for fig in self.figures],
        }
        # Omitted (not null) when absent so un-profiled payloads keep their
        # pre-obs shape byte-for-byte.
        if self.obs is not None:
            payload["obs"] = _jsonable(self.obs)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentResult":
        """Rebuild a result serialized with :meth:`to_dict`.

        ``to_dict`` -> ``from_dict`` is lossless for JSON-native payloads;
        numpy values come back as the equivalent python numbers, which
        format identically in CSVs and SVGs.
        """
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=tuple(tuple(row) for row in payload["rows"]),
            rendered=payload.get("rendered", ""),
            notes=payload.get("notes", ""),
            figures=tuple(figure_from_dict(f) for f in payload.get("figures", ())),
            obs=payload.get("obs"),
        )

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {list(self.headers)}"
            ) from None
        return [row[idx] for row in self.rows]


def rows_from_columns(*columns: Sequence) -> tuple[tuple, ...]:
    """Zip equal-length columns into result rows."""
    lengths = {len(c) for c in columns}
    if len(lengths) > 1:
        raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
    return tuple(zip(*columns))
