"""Figures 4(b) and 4(c): per-class times under CMFSD vs MFCD.

For each correlation setting (``p = 0.9`` for 4(b), ``p = 0.1`` for 4(c))
and each class ``i = 1..K``: online and download time per file under CMFSD
with ``rho = 0.1`` and ``rho = 0.9``, with MFCD as the no-collaboration
reference.  Expected shapes (paper Sec. 4.2.2):

* CMFSD introduces *unfairness in download time per file*: single-file
  peers finish faster per file than multi-file peers, more strongly at low
  correlation and large rho.
* At high correlation with small rho, every class improves greatly over
  MFCD and the unfairness is mild.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel, steady_state_path
from repro.core.correlation import CorrelationModel
from repro.core.mfcd import MFCDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    correlations: tuple[float, ...] = (0.9, 0.1),
    rho_values: tuple[float, ...] = (0.1, 0.9),
    warm_start: bool = True,
) -> ExperimentResult:
    """Per-class CMFSD/MFCD comparison at the paper's settings.

    The CMFSD stationary points along the rho grid are solved as a
    continuation path (each point warm-starting the next); pass
    ``warm_start=False`` to solve every point cold.
    """
    classes = list(range(1, params.num_files + 1))
    headers = (
        "p",
        "class_i",
        "cmfsd_rho0.1_online",
        "cmfsd_rho0.1_download",
        "cmfsd_rho0.9_online",
        "cmfsd_rho0.9_download",
        "mfcd_online",
        "mfcd_download",
    )
    if tuple(rho_values) != (0.1, 0.9):
        # Column names are tied to the paper's two rho settings.
        headers = (
            ("p", "class_i")
            + tuple(
                f"cmfsd_rho{r}_{m}" for r in rho_values for m in ("online", "download")
            )
            + ("mfcd_online", "mfcd_download")
        )
    rows: list[tuple] = []
    sections: list[str] = []
    figures: list[FigureSpec] = []
    for p in correlations:
        corr = CorrelationModel(num_files=params.num_files, p=p)
        mfcd = MFCDModel.from_correlation(params, corr)
        cmfsd_metrics = {}
        models = [
            CMFSDModel.from_correlation(params, corr, rho=rho) for rho in rho_values
        ]
        steadies = steady_state_path(models, warm_start=warm_start)
        for rho, model, steady in zip(rho_values, models, steadies):
            cmfsd_metrics[rho] = [model.class_metrics(i, steady) for i in classes]
        series: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        xs = np.asarray(classes, dtype=float)
        for i_idx, i in enumerate(classes):
            row: list = [p, i]
            for rho in rho_values:
                cm = cmfsd_metrics[rho][i_idx]
                row.extend([cm.online_time_per_file, cm.download_time_per_file])
            mf = mfcd.class_metrics(i)
            row.extend([mf.online_time_per_file, mf.download_time_per_file])
            rows.append(tuple(row))
        for rho in rho_values:
            series[f"CMFSD rho={rho} online"] = (
                xs,
                np.asarray([cm.online_time_per_file for cm in cmfsd_metrics[rho]]),
            )
        series["MFCD online"] = (
            xs,
            np.asarray([mfcd.class_metrics(i).online_time_per_file for i in classes]),
        )
        table = format_table(
            headers[1:],
            [r[1:] for r in rows if r[0] == p],
            title=f"Figure 4({'b' if p == correlations[0] else 'c'}) at p={p}",
        )
        plot = ascii_plot(
            series,
            title=f"Figure 4 per-class online time per file, p={p}",
            xlabel="peer class i",
            ylabel="online time per file",
        )
        sections.append(f"{table}\n\n{plot}")
        panel = "b" if p == correlations[0] else "c"
        figures.append(
            FigureSpec(
                name=f"panel_{panel}",
                series={k: (tuple(v[0]), tuple(v[1])) for k, v in series.items()},
                title=f"Figure 4({panel}) (reproduced), p={p}",
                xlabel="peer class i",
                ylabel="online time per file",
            )
        )

    notes = (
        "CMFSD improves on MFCD for all classes at high correlation (most at "
        "small rho), at the price of download-time unfairness favouring "
        "single-file peers -- strongest at low correlation with large rho."
    )
    return ExperimentResult(
        experiment_id="figure4bc",
        title="Figures 4(b)/(c): per-class times, CMFSD vs MFCD",
        headers=headers,
        rows=tuple(rows),
        rendered="\n\n".join(sections) + f"\n\n{notes}",
        notes=notes,
        figures=tuple(figures),
    )
