"""Figure 3: per-class online/download time per file, MTCD vs MTSD.

Two correlation settings (``p = 0.1`` and ``p = 1.0``), classes ``i = 1..K``.
Expected shape (paper Sec. 4.2.1):

* MTCD online time per file is ``c(p) + 1/(i*gamma)`` -- decreasing in
  ``i``: peers requesting more files amortise the seeding phase.
* MTCD download time per file is the constant ``c(p)`` -- fair.
* MTSD is flat at ``T + 1/gamma`` / ``T`` for every class.
* At ``p = 0.1`` MTCD's class-1 peers (the majority) are worse off than
  MTSD while large classes are better off; at ``p = 1.0`` MTCD is worse for
  every class, in both metrics.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.correlation import CorrelationModel
from repro.core.mtcd import MTCDModel
from repro.core.mtsd import MTSDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    correlations: tuple[float, ...] = (0.1, 1.0),
) -> ExperimentResult:
    """Evaluate per-class metrics at the paper's two correlation settings."""
    classes = list(range(1, params.num_files + 1))
    headers = (
        "p",
        "class_i",
        "mtcd_online_per_file",
        "mtcd_download_per_file",
        "mtsd_online_per_file",
        "mtsd_download_per_file",
    )
    rows: list[tuple] = []
    sections: list[str] = []
    figures: list[FigureSpec] = []
    for p in correlations:
        corr = CorrelationModel(num_files=params.num_files, p=p)
        mtcd = MTCDModel.from_correlation(params, corr)
        mtsd = MTSDModel.from_correlation(params, corr)
        mtcd_online, mtcd_dl, mtsd_online, mtsd_dl = [], [], [], []
        for i in classes:
            cm_c = mtcd.class_metrics(i)
            cm_s = mtsd.class_metrics(i)
            mtcd_online.append(cm_c.online_time_per_file)
            mtcd_dl.append(cm_c.download_time_per_file)
            mtsd_online.append(cm_s.online_time_per_file)
            mtsd_dl.append(cm_s.download_time_per_file)
            rows.append(
                (p, i, mtcd_online[-1], mtcd_dl[-1], mtsd_online[-1], mtsd_dl[-1])
            )
        table = format_table(
            headers[1:],
            [r[1:] for r in rows if r[0] == p],
            title=f"Figure 3 at p={p}",
        )
        xs = np.asarray(classes, dtype=float)
        plot = ascii_plot(
            {
                "MTCD online": (xs, np.asarray(mtcd_online)),
                "MTCD download": (xs, np.asarray(mtcd_dl)),
                "MTSD online": (xs, np.asarray(mtsd_online)),
                "MTSD download": (xs, np.asarray(mtsd_dl)),
            },
            title=f"Figure 3 (reproduced), p={p}",
            xlabel="peer class i (files requested)",
            ylabel="time per file",
        )
        sections.append(f"{table}\n\n{plot}")
        figures.append(
            FigureSpec(
                name=f"per_class_p{str(p).replace('.', '_')}",
                series={
                    "MTCD online": (tuple(xs), tuple(mtcd_online)),
                    "MTCD download": (tuple(xs), tuple(mtcd_dl)),
                    "MTSD online": (tuple(xs), tuple(mtsd_online)),
                    "MTSD download": (tuple(xs), tuple(mtsd_dl)),
                },
                title=f"Figure 3 (reproduced), p={p}",
                xlabel="peer class i",
                ylabel="time per file",
            )
        )

    notes = (
        "MTCD online time per file decreases with class (multi-file peers do "
        "better under concurrency) while its download time per file is "
        "class-independent; MTSD is flat in both metrics.  At low correlation "
        "only large classes beat MTSD; at p=1.0 MTCD loses everywhere."
    )
    return ExperimentResult(
        experiment_id="figure3",
        title="Figure 3: per-class online/download time per file, MTCD vs MTSD",
        headers=headers,
        rows=tuple(rows),
        rendered="\n\n".join(sections) + f"\n\n{notes}",
        notes=notes,
        figures=tuple(figures),
    )
