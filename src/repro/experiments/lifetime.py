"""Torrent-lifetime experiment (extension): decaying arrivals and death.

Guo et al. [4] -- the measurement study the paper builds its motivation on
-- observed that new-peer arrivals decay exponentially over a torrent's
life, and worked on *prolonging torrent lifetime*; the paper explicitly
contrasts its goal (individual performance) with theirs.  This experiment
joins the two perspectives: drive the MFCD and CMFSD fluid models with a
decaying arrival rate

    lambda_i(t) = lambda_i * exp(-t / tau)

and ask how long the torrent remains *alive* (downloader population above
a threshold) and how much of the offered load completes under each scheme.

Expected shape: CMFSD(rho=0) keeps completions flowing longer for the same
arrival history -- the virtual seeds partially replace the real seeds that
stop appearing as the torrent ages -- so collaboration also helps the
lifetime goal of [4], not just the per-user times the paper optimises.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel
from repro.core.correlation import CorrelationModel
from repro.core.mfcd import MFCDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec
from repro.ode import integrate_scipy, sample_dense

__all__ = ["run"]


def _decaying_rhs(base_rhs, inflow_slots, base_rates, tau):
    """Wrap a zero-arrival RHS with exponentially decaying inflows."""

    def rhs(t, y):
        dy = base_rhs(t, y)
        dy[inflow_slots] += base_rates * np.exp(-t / tau)
        return dy

    return rhs


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    p: float = 0.9,
    lambda0: float = 1.0,
    tau: float = 400.0,
    horizon: float = 4000.0,
    alive_threshold: float = 1.0,
    rho_values: tuple[float, ...] = (0.0, 0.5, 1.0),
) -> ExperimentResult:
    """Drive MFCD and CMFSD with lambda(t) = lambda0 * exp(-t/tau)."""
    if tau <= 0 or lambda0 <= 0:
        raise ValueError("tau and lambda0 must be positive")
    if params.download_bandwidth is None:
        params = params.with_(download_bandwidth=10.0 * params.mu)
    corr = CorrelationModel(num_files=params.num_files, p=p, visit_rate=lambda0)
    K = params.num_files
    times = np.linspace(0.0, horizon, 600)

    headers = (
        "scheme",
        "rho",
        "alive_until",
        "completions",
        "offered_users",
        "completion_fraction",
    )
    rows: list[tuple] = []
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    offered = float(np.sum(corr.class_rates())) * tau  # integral of arrivals

    def analyse(label, rhs, dim, downloader_slice, user_weights, seed_slice, seed_weights):
        result = integrate_scipy(rhs, np.zeros(dim), (0.0, horizon), rtol=1e-8, atol=1e-10)
        states = sample_dense(result, times)
        downloaders = states[:, downloader_slice] @ user_weights
        curves[label] = (times, downloaders)
        # Alive until the last instant the downloader population clears the
        # threshold (with decaying arrivals it never recovers afterwards).
        above = np.nonzero(downloaders >= alive_threshold)[0]
        alive_until = float(times[above[-1]]) if above.size else 0.0
        # Completions in *user* units: integral of the seed-formation flow
        # (gamma * integral of y) plus whoever is still seeding at the end.
        y_total = states[:, seed_slice] @ seed_weights
        completions = params.gamma * float(np.trapezoid(y_total, times)) + float(
            y_total[-1]
        )
        rows.append(
            (
                label.split(" rho=")[0],
                float(label.split("rho=")[1]) if "rho=" in label else np.nan,
                alive_until,
                completions,
                offered,
                completions / offered,
            )
        )

    # --- MFCD: Eq.-(1) subtorrent dynamics, scaled to user counts -----------------
    mfcd = MFCDModel(params=params, class_rates=np.zeros(K)).as_mtcd()
    i = np.arange(1, K + 1, dtype=float)
    base_rates = corr.per_torrent_rates()
    rhs = _decaying_rhs(mfcd.rhs, np.arange(K), base_rates, tau)
    analyse(
        "MFCD",
        rhs,
        mfcd.state_dim,
        slice(0, K),
        K / i,  # virtual peers -> users
        slice(K, 2 * K),
        K / i,  # per-subtorrent class seeds -> users
    )

    # --- CMFSD at each rho ----------------------------------------------------------
    for rho in rho_values:
        model = CMFSDModel(params=params, class_rates=np.zeros(K), rho=rho)
        idx = model.index
        inflow_slots = np.array([idx.pair_index(ii, 1) for ii in range(1, K + 1)])
        rhs = _decaying_rhs(model.rhs, inflow_slots, corr.class_rates(), tau)
        analyse(
            f"CMFSD rho={rho}",
            rhs,
            model.state_dim,
            slice(0, idx.n_pairs),
            np.ones(idx.n_pairs),
            slice(idx.n_pairs, idx.state_dim),
            np.ones(K),
        )

    table = format_table(
        headers,
        rows,
        title=(
            f"Torrent lifetime under decaying arrivals "
            f"lambda(t) = {lambda0}*exp(-t/{tau:g}), p={p} "
            f"(alive = downloaders >= {alive_threshold:g})"
        ),
    )
    plot = ascii_plot(
        curves,
        title="Downloader population over the torrent's life",
        xlabel="time",
        ylabel="users downloading",
    )
    mfcd_row = rows[0]
    collab_row = rows[1]
    still_busy = mfcd_row[2] >= float(times[-2])
    mfcd_state = (
        f"is still busy at the horizon with only {mfcd_row[5]:.0%} of the "
        "offered load served"
        if still_busy
        else f"empties by t={mfcd_row[2]:.0f} ({mfcd_row[5]:.0%} served)"
    )
    notes = (
        f"Under the same decaying arrival history, MFCD {mfcd_state}, while "
        f"CMFSD(rho=0) serves {collab_row[5]:.0%} and empties by "
        f"t={collab_row[2]:.0f}: as real seeds stop appearing in the aging "
        "torrent, the virtual seeds keep service flowing.  Collaboration "
        "thus also addresses [4]'s torrent-lifetime concern, not only the "
        "per-user times the paper optimises."
    )
    return ExperimentResult(
        experiment_id="lifetime",
        title="Torrent lifetime under decaying arrivals (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="population",
                series={k: (tuple(v[0]), tuple(v[1])) for k, v in curves.items()},
                title="Downloader population under decaying arrivals",
                xlabel="time",
                ylabel="users downloading",
            ),
        ),
    )
