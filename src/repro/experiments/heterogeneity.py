"""Heterogeneous-bandwidth experiment (extension): Sec. 2 in full.

The paper states its multi-class model for arbitrary bandwidth classes
``C_i(mu_i, c_i)`` but only ever instantiates the symmetric ``mu/i, c/i``
special case that MTCD needs.  This experiment exercises the general
model on a realistic access-link mix inside one torrent:

* dial-up/DSL peers  (slow upload, modest download)
* cable peers        (the paper's baseline)
* fibre peers        (fast both ways)

For each mix we solve the steady state numerically (no closed form exists
once ``mu_i/c_i`` varies) and report per-class download times, then sweep
the fibre fraction to show how a few fast uploaders subsidise everyone --
the same effect CMFSD engineers deliberately with virtual seeds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.heterogeneous import HeterogeneousModel, PeerClass
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run", "ACCESS_TIERS"]

#: (name, upload mu_i, download c_i) -- cable matches the paper's baseline.
ACCESS_TIERS: tuple[tuple[str, float, float], ...] = (
    ("dsl", 0.008, 0.08),
    ("cable", 0.02, 0.2),
    ("fibre", 0.08, 0.8),
)


def _mix_model(
    fibre_fraction: float,
    total_rate: float,
    gamma: float,
    eta: float,
) -> HeterogeneousModel:
    """One torrent with dsl/cable/fibre classes; fibre share is swept."""
    dsl_frac = (1.0 - fibre_fraction) * 0.5
    cable_frac = (1.0 - fibre_fraction) * 0.5
    fracs = (dsl_frac, cable_frac, fibre_fraction)
    classes = tuple(
        PeerClass(
            upload=mu_i,
            download=c_i,
            arrival_rate=total_rate * frac,
            seed_departure_rate=gamma,
        )
        for (name, mu_i, c_i), frac in zip(ACCESS_TIERS, fracs)
        if frac > 0
    )
    return HeterogeneousModel(classes=classes, eta=eta)


def critical_fibre_fraction(gamma: float) -> float:
    """Fibre share at which stationary seed capacity meets total demand.

    Beyond this boundary the upload-constrained model leaves its validity
    regime (the heterogeneous analogue of Eq. 4's ``gamma > mu``): seeds
    alone saturate demand and the downloader population collapses.
    """
    (_, mu_dsl, _), (_, mu_cable, _), (_, mu_fibre, _) = ACCESS_TIERS
    base = 0.5 * (mu_dsl + mu_cable)  # per-user upload at fibre share 0
    return (gamma - base) / (mu_fibre - base)


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    total_rate: float = 1.0,
    fibre_fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.35, 0.5),
) -> ExperimentResult:
    """Sweep the fibre share and report per-class download times."""
    headers = ("fibre_fraction", "t_dsl", "t_cable", "t_fibre", "t_mean")
    f_crit = critical_fibre_fraction(params.gamma)
    rows: list[tuple] = []
    for frac in fibre_fractions:
        if not 0.0 <= frac < 1.0:
            raise ValueError(f"fibre fraction must be in [0, 1), got {frac}")
        model = _mix_model(frac, total_rate, params.gamma, params.eta)
        if not model.is_stable():
            raise ValueError(
                f"fibre fraction {frac} is beyond the model's validity "
                f"boundary f* = {f_crit:.3f}: stationary seeds alone would "
                "saturate demand (the system becomes download-constrained)"
            )
        result = model.steady_state_numeric()
        if not result.converged:
            raise RuntimeError(f"steady state failed to converge at fibre={frac}")
        times = model.download_times_from_state(result.state)
        lam = np.array([c.arrival_rate for c in model.classes])
        mean_t = float(np.sum(times * lam) / np.sum(lam))
        if frac > 0:
            t_dsl, t_cable, t_fibre = float(times[0]), float(times[1]), float(times[2])
        else:
            t_dsl, t_cable, t_fibre = float(times[0]), float(times[1]), float("nan")
        rows.append((frac, t_dsl, t_cable, t_fibre, mean_t))

    table = format_table(
        headers,
        rows,
        title=(
            "Heterogeneous access mix in one torrent (Sec.-2 general model, "
            f"eta={params.eta}, gamma={params.gamma}): download times"
        ),
    )
    xs = np.array([r[0] for r in rows])
    plot = ascii_plot(
        {
            "dsl": (xs, np.array([r[1] for r in rows])),
            "cable": (xs, np.array([r[2] for r in rows])),
            "mean": (xs, np.array([r[4] for r in rows])),
        },
        title="Download time vs fibre share (fast uploaders subsidise everyone)",
        xlabel="fibre fraction",
        ylabel="download time",
        height=14,
    )
    notes = (
        "Seed capacity is allocated proportionally to download bandwidth "
        "(assumption 2), so fibre peers also *receive* the most -- yet the "
        "mean download time falls steeply with the fibre share because their "
        "upload enters the common pool: the same subsidy mechanism CMFSD "
        "builds deliberately with virtual seeds.  Beyond the boundary "
        f"f* = {f_crit:.3f} the stationary seeds saturate demand and the "
        "upload-constrained model (like Eq. 4's gamma > mu condition) no "
        "longer applies."
    )
    return ExperimentResult(
        experiment_id="heterogeneity",
        title="Heterogeneous bandwidth classes (Sec.-2 general model, extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="times_vs_fibre",
                series={
                    "dsl": (tuple(xs), tuple(r[1] for r in rows)),
                    "cable": (tuple(xs), tuple(r[2] for r in rows)),
                    "mean": (tuple(xs), tuple(r[4] for r in rows)),
                },
                title="Download times vs fibre share (Sec.-2 general model)",
                xlabel="fibre fraction",
                ylabel="download time",
            ),
        ),
    )
