"""Adapt mechanism study (the paper's Sec. 4.3 and declared future work).

The paper proposes Adapt but leaves its systematic evaluation -- "probing
the proper settings for phi_1, phi_2, v_1 and v_2" -- to future work.  This
driver performs that study at two levels:

* **Fluid level**: every class carries its own rho and iterates the Adapt
  rule against the Eq.-(5) steady state (:func:`adapt_fixed_point`),
  sweeping the dead-band width and cheater presence.  A *narrow* dead band
  makes net contributors (large classes, whose stages are mostly
  virtual-seed-capable) ratchet rho upward -- the degeneration toward MFCD
  the paper predicts; a *wide* band keeps the collaborative optimum stable.
* **Simulation level**: per-peer controllers on measured give/take inside
  the discrete-event simulator, sweeping the cheater fraction.

Dead-band thresholds are expressed as fractions of the upload bandwidth
``mu`` (the natural scale of the give/take imbalance).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.adapt import AdaptPolicy, adapt_fixed_point
from repro.core.correlation import CorrelationModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.core.schemes import Scheme
from repro.experiments.base import ExperimentResult
from repro.sim.scenarios import ScenarioConfig, build_simulation

__all__ = ["run"]


def _fluid_rows(
    params: FluidParameters,
    correlations: tuple[float, ...],
    band_fractions: tuple[float, ...],
    max_rounds: int,
    warm_start: bool,
) -> list[tuple]:
    rows: list[tuple] = []
    for p in correlations:
        corr = CorrelationModel(num_files=params.num_files, p=p)
        rates = corr.class_rates()
        for frac in band_fractions:
            half_band = frac * params.mu
            policy = AdaptPolicy(
                phi_increase=half_band,
                phi_decrease=-half_band,
                step_increase=0.1,
                step_decrease=0.1,
                patience=1,
                initial_rho=0.0,
            )
            for cheaters in ((), tuple(range(2, params.num_files + 1, 2))):
                trace = adapt_fixed_point(
                    params,
                    rates,
                    policy,
                    cheater_classes=cheaters,
                    max_rounds=max_rounds,
                    warm_start=warm_start,
                )
                obedient = [
                    i - 1
                    for i in range(2, params.num_files + 1)
                    if i not in cheaters and rates[i - 1] > 0
                ]
                mean_rho = float(np.mean(trace.final_rho[obedient])) if obedient else np.nan
                rows.append(
                    (
                        "fluid",
                        p,
                        frac,
                        len(cheaters) / params.num_files,
                        mean_rho,
                        trace.final_metrics.avg_online_time_per_file,
                        trace.n_rounds,
                    )
                )
    return rows


def _sim_rows(
    params: FluidParameters,
    p: float,
    cheater_fractions: tuple[float, ...],
    *,
    visit_rate: float,
    t_end: float,
    warmup: float,
    seed: int,
) -> list[tuple]:
    rows: list[tuple] = []
    corr = CorrelationModel(num_files=params.num_files, p=p, visit_rate=visit_rate)
    policy = AdaptPolicy(
        phi_increase=0.25 * params.mu,
        phi_decrease=-0.25 * params.mu,
        step_increase=0.1,
        step_decrease=0.1,
        patience=2,
        initial_rho=0.0,
    )
    for frac in cheater_fractions:
        config = ScenarioConfig(
            scheme=Scheme.CMFSD,
            params=params,
            correlation=corr,
            t_end=t_end,
            warmup=warmup,
            seed=seed,
            adapt=policy,
            adapt_period=25.0,
            cheater_fraction=frac,
        )
        system, arrivals = build_simulation(config)
        system.start_sampler(config.sample_interval, config.t_end)
        arrivals.start()
        system.run_until(config.t_end)
        summary = system.metrics.summarize(warmup=config.warmup, horizon=config.t_end)
        finals = [
            rec.rho_trace[-1][1]
            for rec in system.metrics.records.values()
            if rec.rho_trace
            and not rec.is_cheater
            and rec.user_class > 1
            and rec.arrival_time >= warmup
        ]
        mean_rho = float(np.mean(finals)) if finals else np.nan
        rows.append(
            (
                "sim",
                p,
                0.25,
                frac,
                mean_rho,
                summary.avg_online_time_per_file,
                summary.n_users_completed,
            )
        )
    return rows


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    correlations: tuple[float, ...] = (0.9, 0.3),
    band_fractions: tuple[float, ...] = (0.05, 0.25, 1.0),
    max_rounds: int = 40,
    include_sim: bool = True,
    sim_cheater_fractions: tuple[float, ...] = (0.0, 0.5),
    sim_visit_rate: float = 0.4,
    sim_t_end: float = 2000.0,
    sim_warmup: float = 600.0,
    seed: int = 7,
    warm_start: bool = True,
) -> ExperimentResult:
    """Sweep Adapt parameters at the fluid level (and optionally in the sim).

    ``warm_start`` threads each Adapt round's stationary point into the
    next round's solve (see :func:`repro.core.adapt.adapt_fixed_point`);
    disable it to force cold solves everywhere (``--no-warm-start``).
    """
    headers = (
        "level",
        "p",
        "band_over_mu",
        "cheater_fraction",
        "mean_final_rho",
        "avg_online_per_file",
        "rounds_or_users",
    )
    rows = _fluid_rows(params, correlations, band_fractions, max_rounds, warm_start)
    if include_sim:
        rows.extend(
            _sim_rows(
                params,
                correlations[0],
                sim_cheater_fractions,
                visit_rate=sim_visit_rate,
                t_end=sim_t_end,
                warmup=sim_warmup,
                seed=seed,
            )
        )
    table = format_table(
        headers,
        rows,
        title="Adapt mechanism study (fluid fixed-point + per-peer simulation)",
    )
    notes = (
        "Narrow dead bands let net contributors ratchet rho upward (toward the "
        "MFCD regime); wide bands keep the rho=0 collaborative optimum.  "
        "Cheaters raise obedient peers' imbalance and degrade the average "
        "online time, as Sec. 4.3 anticipates."
    )
    return ExperimentResult(
        experiment_id="adapt",
        title="Adapt mechanism parameter study (paper future work)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{notes}",
        notes=notes,
    )
