"""Fairness experiment (extension): quantifying Sec. 4.2.2's trade-off.

The paper describes CMFSD's unfairness qualitatively ("peers requesting
only one file download faster...").  This driver quantifies it with Jain's
fairness index over the per-class *download time per file*, weighted by
class arrival rates, across the (p, rho) grid, alongside the efficiency
(average online time per file).  MTSD and MTCD anchor the comparison:
MTSD is perfectly fair by construction (J = 1); MTCD is download-fair too
(``c(p)`` for every class) but slow.

Expected shape: CMFSD trades fairness for speed -- J falls as rho falls
(more donated bandwidth advantages class-1 peers) and rises back toward 1
at rho = 1; the efficiency/fairness frontier is what a deployer actually
chooses on.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.stats import jain_fairness
from repro.analysis.tables import format_table
from repro.core.cmfsd import CMFSDModel
from repro.core.correlation import CorrelationModel
from repro.core.mtcd import MTCDModel
from repro.core.mtsd import MTSDModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]


def _scheme_fairness(metrics_list, rates) -> float:
    times = np.array([m.download_time_per_file for m in metrics_list])
    return jain_fairness(times, rates)


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    correlations: tuple[float, ...] = (0.1, 0.5, 0.9),
    rho_values: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
) -> ExperimentResult:
    """Jain fairness (download time per file across classes) vs efficiency."""
    headers = ("p", "scheme", "rho", "jain_fairness", "avg_online_per_file")
    rows: list[tuple] = []
    classes = range(1, params.num_files + 1)
    for p in correlations:
        corr = CorrelationModel(num_files=params.num_files, p=p)
        rates = corr.class_rates()
        mtsd = MTSDModel.from_correlation(params, corr)
        rows.append(
            (
                p,
                "MTSD",
                np.nan,
                _scheme_fairness([mtsd.class_metrics(i) for i in classes], rates),
                mtsd.system_metrics().avg_online_time_per_file,
            )
        )
        mtcd = MTCDModel.from_correlation(params, corr)
        rows.append(
            (
                p,
                "MTCD",
                np.nan,
                _scheme_fairness([mtcd.class_metrics(i) for i in classes], rates),
                mtcd.system_metrics().avg_online_time_per_file,
            )
        )
        warm = None
        for rho in rho_values:
            model = CMFSDModel.from_correlation(params, corr, rho=rho)
            steady = model.steady_state(initial_state=warm)
            warm = steady.state
            cms = [model.class_metrics(i, steady) for i in classes]
            rows.append(
                (
                    p,
                    "CMFSD",
                    rho,
                    _scheme_fairness(cms, rates),
                    model.system_metrics(steady).avg_online_time_per_file,
                )
            )

    table = format_table(
        headers,
        rows,
        title=(
            "Jain fairness of download time per file (rate-weighted across "
            f"classes) vs efficiency (K={params.num_files})"
        ),
        precision=4,
    )
    # Efficiency/fairness frontier at each correlation.
    frontier_series = {}
    for p in correlations:
        cmfsd_rows = [r for r in rows if r[0] == p and r[1] == "CMFSD"]
        frontier_series[f"CMFSD p={p}"] = (
            np.array([r[4] for r in cmfsd_rows]),
            np.array([r[3] for r in cmfsd_rows]),
        )
    plot = ascii_plot(
        frontier_series,
        title="Efficiency-fairness frontier (left = faster, up = fairer)",
        xlabel="avg online time per file",
        ylabel="Jain fairness of download time",
        height=14,
    )
    j_low = min(r[3] for r in rows if r[1] == "CMFSD" and r[0] == correlations[0])
    notes = (
        "MTSD and MTCD are download-fair by construction (J = 1).  CMFSD "
        "buys its speed with unfairness that grows as rho falls and as the "
        f"correlation drops (J down to {j_low:.3f} at p={correlations[0]}); at "
        "high correlation the frontier is benign -- rho = 0 is both fastest "
        "and still J > 0.97 -- which is exactly why the paper recommends it "
        "for single-torrent (highly correlated) content."
    )
    return ExperimentResult(
        experiment_id="fairness",
        title="Fairness vs efficiency across schemes (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="frontier",
                series={
                    k: (tuple(v[0]), tuple(v[1])) for k, v in frontier_series.items()
                },
                title="CMFSD efficiency-fairness frontier",
                xlabel="avg online time per file",
                ylabel="Jain fairness (download time per file)",
            ),
        ),
    )
