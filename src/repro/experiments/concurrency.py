"""Concurrency-limit experiment (extension): how many active torrents?

The paper's Sec.-4.2.1 recommendation is to download files "one by one";
real clients bound active torrents at some ``m`` (3-5 is a common
default).  The :class:`BatchedDownloadModel` interpolates exactly between
MTSD (``m = 1``) and MTCD (``m = K``); this driver sweeps ``m`` across
correlations and quantifies the cost of each concurrency setting.

Expected shape: the average online time per file is monotone increasing in
``m`` for every correlation; the penalty of typical client defaults (m=3)
grows with the correlation, and single-file-at-a-time is always optimal --
turning the paper's qualitative advice into a concrete dial.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.core.batched import BatchedDownloadModel
from repro.core.correlation import CorrelationModel
from repro.core.parameters import FluidParameters, PAPER_PARAMETERS
from repro.experiments.base import ExperimentResult, FigureSpec

__all__ = ["run"]


def run(
    params: FluidParameters = PAPER_PARAMETERS,
    *,
    correlations: tuple[float, ...] = (0.1, 0.5, 0.9),
    concurrency_limits: tuple[int, ...] = (1, 2, 3, 4, 5, 7, 10),
) -> ExperimentResult:
    """Sweep the active-torrent limit ``m`` at several correlations."""
    headers = ("p", "m", "online_per_file", "download_per_file", "penalty_vs_m1")
    rows: list[tuple] = []
    series: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for p in correlations:
        corr = CorrelationModel(num_files=params.num_files, p=p)
        base = None
        values = []
        for m in concurrency_limits:
            if m < 1:
                raise ValueError(f"concurrency limits must be >= 1, got {m}")
            model = BatchedDownloadModel.from_correlation(params, corr, max_concurrency=m)
            sm = model.system_metrics()
            online = sm.avg_online_time_per_file
            if base is None:
                base = online
            rows.append(
                (p, m, online, sm.avg_download_time_per_file, online / base)
            )
            values.append(online)
        series[f"p={p}"] = (
            np.asarray(concurrency_limits, dtype=float),
            np.asarray(values),
        )

    table = format_table(
        headers,
        rows,
        title=(
            "Bounded concurrency (MTBD): avg online time per file vs the "
            f"active-torrent limit m (K={params.num_files})"
        ),
    )
    plot = ascii_plot(
        series,
        title="Online time per file vs concurrency limit",
        xlabel="m (max concurrent downloads)",
        ylabel="avg online time per file",
        height=16,
    )
    worst = max(r[4] for r in rows if r[1] == 3)
    notes = (
        "m = 1 (the paper's recommendation) is optimal at every correlation; "
        f"a typical client default of m = 3 already costs up to "
        f"{(worst - 1):.0%} at high correlation, and the curve saturates at "
        "the MTCD value by m = K.  The penalty is purely a queueing effect: "
        "splitting bandwidth lengthens every transfer without adding any "
        "capacity."
    )
    return ExperimentResult(
        experiment_id="concurrency",
        title="Concurrency-limit sweep: MTSD -> MTCD interpolation (extension)",
        headers=headers,
        rows=tuple(rows),
        rendered=f"{table}\n\n{plot}\n\n{notes}",
        notes=notes,
        figures=(
            FigureSpec(
                name="online_vs_m",
                series={k: (tuple(v[0]), tuple(v[1])) for k, v in series.items()},
                title="Bounded concurrency: online time per file vs m",
                xlabel="max concurrent downloads m",
                ylabel="avg online time per file",
            ),
        ),
    )
