"""ODE and steady-state numerics substrate.

The fluid models in :mod:`repro.core` are systems of ordinary differential
equations.  This subpackage provides the numerical machinery used to evolve
them and to locate their stationary points:

* :mod:`repro.ode.integrators` -- explicit fixed-step RK4 and an adaptive
  Dormand--Prince RK45 implemented from scratch, plus a thin wrapper around
  :func:`scipy.integrate.solve_ivp`.  Having two independent implementations
  lets the test-suite cross-check every model.
* :mod:`repro.ode.steady_state` -- integrate-to-convergence drivers, damped
  Newton iteration with a numerical Jacobian, Anderson acceleration, and a
  wrapper over :func:`scipy.optimize.root`.
* :mod:`repro.ode.events` -- time-grid helpers and dense-output sampling.

All solvers operate on plain callables ``f(t, y) -> dy/dt`` over
one-dimensional :class:`numpy.ndarray` state vectors.
"""

from repro.ode.types import IntegrationResult, SteadyStateResult
from repro.ode.integrators import (
    integrate_rk4,
    integrate_rk45,
    integrate_scipy,
    integrate,
)
from repro.ode.steady_state import (
    SteadyStateOptions,
    PathResult,
    integrate_to_steady_state,
    newton_steady_state,
    anderson_steady_state,
    scipy_steady_state,
    find_steady_state,
    solve_path,
    residual_norm,
)
from repro.ode.events import time_grid, sample_dense

__all__ = [
    "IntegrationResult",
    "SteadyStateResult",
    "integrate_rk4",
    "integrate_rk45",
    "integrate_scipy",
    "integrate",
    "SteadyStateOptions",
    "PathResult",
    "integrate_to_steady_state",
    "newton_steady_state",
    "anderson_steady_state",
    "scipy_steady_state",
    "find_steady_state",
    "solve_path",
    "residual_norm",
    "time_grid",
    "sample_dense",
]
