"""Result containers shared by the ODE solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IntegrationResult", "SteadyStateResult"]


@dataclass(frozen=True)
class IntegrationResult:
    """Trajectory produced by an initial-value-problem solver.

    Attributes
    ----------
    t:
        Sample times, shape ``(n,)``, strictly increasing.
    y:
        States at those times, shape ``(n, dim)``.
    n_steps:
        Number of accepted solver steps (for fixed-step solvers this equals
        ``n - 1``).
    n_rhs_evals:
        Number of right-hand-side evaluations performed.
    method:
        Name of the solver that produced the trajectory.
    success:
        ``False`` if the solver aborted (e.g. step-size underflow).
    message:
        Human-readable completion status.
    stop_reason:
        Machine-readable termination cause -- one of ``"completed"`` (the
        solver reached the end of ``t_span``), ``"max_steps"`` (step budget
        exhausted), ``"step_underflow"`` (adaptive step collapsed),
        ``"event"`` (a terminal event fired) or ``"failure"`` (backend
        error).  Callers previously had to infer this from ``success`` +
        ``message`` string matching.
    n_rejected:
        Number of trial steps rejected by the error control (adaptive
        solvers only; ``0`` for fixed-step and backend solvers).
    """

    t: np.ndarray
    y: np.ndarray
    n_steps: int
    n_rhs_evals: int
    method: str
    success: bool = True
    message: str = "completed"
    stop_reason: str = "completed"
    n_rejected: int = 0

    def __post_init__(self) -> None:
        t = np.asarray(self.t, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if t.ndim != 1:
            raise ValueError(f"t must be one-dimensional, got shape {t.shape}")
        if y.ndim != 2 or y.shape[0] != t.shape[0]:
            raise ValueError(
                f"y must have shape (len(t), dim); got {y.shape} for {t.shape[0]} times"
            )
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "y", y)

    @property
    def final_time(self) -> float:
        """Last sample time."""
        return float(self.t[-1])

    @property
    def final_state(self) -> np.ndarray:
        """State at the last sample time (view into ``y``)."""
        return self.y[-1]

    @property
    def dim(self) -> int:
        """Dimension of the state vector."""
        return int(self.y.shape[1])


@dataclass(frozen=True)
class SteadyStateResult:
    """Stationary point located for ``f(t, y) = 0``.

    Attributes
    ----------
    state:
        The stationary state vector.
    residual:
        Infinity norm of ``f(t, state)`` at the reported state.
    converged:
        Whether the requested tolerance was met.
    n_iterations:
        Iterations (Newton/Anderson) or accepted steps (integration) used.
    method:
        Name of the algorithm that produced the state.
    trajectory:
        Optional :class:`IntegrationResult` for integrate-to-convergence
        drivers; ``None`` for purely algebraic solvers.
    """

    state: np.ndarray
    residual: float
    converged: bool
    n_iterations: int
    method: str
    trajectory: IntegrationResult | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "state", np.asarray(self.state, dtype=float))
