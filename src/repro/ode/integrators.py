"""Initial-value-problem solvers.

Two independent implementations are provided on purpose:

* :func:`integrate_rk4` / :func:`integrate_rk45` are written from scratch in
  this module (classic fourth-order Runge--Kutta and the Dormand--Prince
  embedded 5(4) pair).
* :func:`integrate_scipy` delegates to :func:`scipy.integrate.solve_ivp`.

The test-suite requires both families to agree on every fluid model, which
guards against transcription errors in either the models or the solvers.
All solvers accept ``f(t, y) -> ndarray`` with ``y`` one-dimensional.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from repro.obs import current_registry, current_tracer
from repro.ode.types import IntegrationResult

__all__ = ["integrate_rk4", "integrate_rk45", "integrate_scipy", "integrate"]

RHS = Callable[[float, np.ndarray], np.ndarray]


def _record_solve(result: IntegrationResult) -> IntegrationResult:
    """Fold one finished solve into the current metrics registry.

    Per-solve (not per-step) so the solvers' hot loops stay untouched; the
    no-op default registry makes this a handful of dict lookups per solve.
    """
    reg = current_registry()
    if reg.enabled:
        prefix = f"ode.{result.method}"
        reg.inc(f"{prefix}.solves")
        reg.inc(f"{prefix}.steps", result.n_steps)
        reg.inc(f"{prefix}.rejected", result.n_rejected)
        reg.inc(f"{prefix}.rhs_evals", result.n_rhs_evals)
        reg.inc(f"{prefix}.stop.{result.stop_reason}")
        reg.inc("ode.solves")
        reg.inc("ode.steps", result.n_steps)
        reg.inc("ode.rhs_evals", result.n_rhs_evals)
    return result

# Dormand-Prince RK5(4) Butcher tableau (the pair used by MATLAB's ode45 and
# scipy's RK45).  C/A define the stages, B the 5th-order weights and E the
# difference between the 5th- and embedded 4th-order weights (error weights).
_DP_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_DP_A = np.array(
    [
        [0, 0, 0, 0, 0, 0],
        [1 / 5, 0, 0, 0, 0, 0],
        [3 / 40, 9 / 40, 0, 0, 0, 0],
        [44 / 45, -56 / 15, 32 / 9, 0, 0, 0],
        [19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729, 0, 0],
        [9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656, 0],
    ]
)
_DP_B = np.array([35 / 384, 0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0])
_DP_B4 = np.array(
    [5179 / 57600, 0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40]
)
_DP_E = _DP_B - _DP_B4


def _validate_span(t_span: Sequence[float]) -> tuple[float, float]:
    t0, t1 = float(t_span[0]), float(t_span[1])
    if not t1 > t0:
        raise ValueError(f"t_span must satisfy t1 > t0, got ({t0}, {t1})")
    return t0, t1


def integrate_rk4(
    rhs: RHS,
    y0: np.ndarray,
    t_span: Sequence[float],
    *,
    n_steps: int = 1000,
) -> IntegrationResult:
    """Integrate with the classic fixed-step fourth-order Runge--Kutta method.

    Parameters
    ----------
    rhs:
        Right-hand side ``f(t, y)``.
    y0:
        Initial state (one-dimensional).
    t_span:
        ``(t0, t1)`` with ``t1 > t0``.
    n_steps:
        Number of equal steps; the trajectory has ``n_steps + 1`` samples.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    t0, t1 = _validate_span(t_span)
    y = np.array(y0, dtype=float)
    if y.ndim != 1:
        raise ValueError("y0 must be one-dimensional")
    h = (t1 - t0) / n_steps
    ts = np.empty(n_steps + 1)
    ys = np.empty((n_steps + 1, y.size))
    ts[0] = t0
    ys[0] = y
    t = t0
    with current_tracer().span("ode.integrate", method="rk4", n_steps=n_steps):
        for k in range(n_steps):
            k1 = np.asarray(rhs(t, y), dtype=float)
            k2 = np.asarray(rhs(t + h / 2, y + h / 2 * k1), dtype=float)
            k3 = np.asarray(rhs(t + h / 2, y + h / 2 * k2), dtype=float)
            k4 = np.asarray(rhs(t + h, y + h * k3), dtype=float)
            y = y + (h / 6) * (k1 + 2 * k2 + 2 * k3 + k4)
            t = t0 + (k + 1) * h
            ts[k + 1] = t
            ys[k + 1] = y
    return _record_solve(
        IntegrationResult(
            t=ts,
            y=ys,
            n_steps=n_steps,
            n_rhs_evals=4 * n_steps,
            method="rk4",
        )
    )


def integrate_rk45(
    rhs: RHS,
    y0: np.ndarray,
    t_span: Sequence[float],
    *,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    h0: float | None = None,
    max_steps: int = 1_000_000,
) -> IntegrationResult:
    """Integrate with an adaptive Dormand--Prince RK5(4) pair.

    Standard embedded-pair error control: after each trial step the
    elementwise error estimate is compared against ``atol + rtol*|y|``; the
    step is accepted when the scaled RMS error is at most one and the step
    size is adapted with the usual fifth-order safety rule.

    Returns the accepted-step trajectory.  ``success`` is ``False`` when the
    step count budget is exhausted or the step size underflows.
    """
    t0, t1 = _validate_span(t_span)
    y = np.array(y0, dtype=float)
    if y.ndim != 1:
        raise ValueError("y0 must be one-dimensional")

    n_evals = 0

    def f(t: float, state: np.ndarray) -> np.ndarray:
        nonlocal n_evals
        n_evals += 1
        return np.asarray(rhs(t, state), dtype=float)

    t = t0
    h = h0 if h0 is not None else (t1 - t0) / 100.0
    h = min(h, t1 - t0)
    ts = [t0]
    ys = [y.copy()]
    k_stages = np.empty((7, y.size))
    n_accepted = 0
    n_rejected = 0
    success = True
    message = "completed"
    stop_reason = "completed"
    min_step = 1e-14 * max(abs(t1), 1.0)
    # Profiling hooks: resolved once per solve so the step loop only pays
    # for step-size observations when a registry is actually installed.
    reg = current_registry()
    record_steps = reg.enabled

    with current_tracer().span("ode.integrate", method="rk45", rtol=rtol):
        k_stages[0] = f(t, y)  # FSAL: stage 0 of the next step is stage 6 of this one
        while t < t1:
            h = min(h, t1 - t)
            if h < min_step:
                success = False
                message = "step size underflow"
                stop_reason = "step_underflow"
                break
            if n_accepted >= max_steps:
                success = False
                message = f"exceeded max_steps={max_steps}"
                stop_reason = "max_steps"
                break
            for i in range(1, 6):
                yi = y + h * (k_stages[:i].T @ _DP_A[i, :i])
                k_stages[i] = f(t + _DP_C[i] * h, yi)
            y_new = y + h * (k_stages[:6].T @ _DP_B[:6])
            k_stages[6] = f(t + h, y_new)
            err_vec = h * (k_stages.T @ _DP_E)
            scale = atol + rtol * np.maximum(np.abs(y), np.abs(y_new))
            err = float(np.sqrt(np.mean((err_vec / scale) ** 2)))
            if err <= 1.0:
                if record_steps:
                    reg.observe("ode.rk45.step_size", h)
                t = t + h
                y = y_new
                ts.append(t)
                ys.append(y.copy())
                k_stages[0] = k_stages[6]
                n_accepted += 1
                factor = 5.0 if err == 0.0 else min(5.0, 0.9 * err ** (-0.2))
            else:
                n_rejected += 1
                factor = max(0.1, 0.9 * err ** (-0.2))
            h = h * factor

    return _record_solve(
        IntegrationResult(
            t=np.asarray(ts),
            y=np.asarray(ys),
            n_steps=n_accepted,
            n_rhs_evals=n_evals,
            method="rk45",
            success=success,
            message=message,
            stop_reason=stop_reason,
            n_rejected=n_rejected,
        )
    )


def integrate_scipy(
    rhs: RHS,
    y0: np.ndarray,
    t_span: Sequence[float],
    *,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    method: str = "RK45",
    t_eval: np.ndarray | None = None,
) -> IntegrationResult:
    """Integrate via :func:`scipy.integrate.solve_ivp` (production path)."""
    t0, t1 = _validate_span(t_span)
    with current_tracer().span("ode.integrate", method=f"scipy-{method}", rtol=rtol):
        sol = solve_ivp(
            rhs,
            (t0, t1),
            np.asarray(y0, dtype=float),
            method=method,
            rtol=rtol,
            atol=atol,
            t_eval=t_eval,
        )
    # solve_ivp status: 0 = reached t_end, 1 = terminal event, -1 = failure.
    stop_reason = {0: "completed", 1: "event"}.get(int(sol.status), "failure")
    return _record_solve(
        IntegrationResult(
            t=sol.t,
            y=sol.y.T,
            n_steps=len(sol.t) - 1,
            n_rhs_evals=int(sol.nfev),
            method=f"scipy-{method}",
            success=bool(sol.success),
            message=str(sol.message),
            stop_reason=stop_reason,
        )
    )


def integrate(
    rhs: RHS,
    y0: np.ndarray,
    t_span: Sequence[float],
    *,
    method: str = "scipy",
    **kwargs,
) -> IntegrationResult:
    """Dispatch to one of the solvers by name.

    ``method`` is one of ``"rk4"``, ``"rk45"`` or ``"scipy"`` (the default
    production path).  Extra keyword arguments are forwarded.
    """
    if method == "rk4":
        return integrate_rk4(rhs, y0, t_span, **kwargs)
    if method == "rk45":
        return integrate_rk45(rhs, y0, t_span, **kwargs)
    if method == "scipy":
        return integrate_scipy(rhs, y0, t_span, **kwargs)
    raise ValueError(f"unknown method {method!r}; expected rk4, rk45 or scipy")
