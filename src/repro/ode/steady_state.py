"""Steady-state (stationary point) solvers for autonomous ODE systems.

The fluid models of the paper are evaluated at their stable operating point
``f(y*) = 0``.  Closed forms exist for the MTCD/MTSD models; the CMFSD model
(Eq. 5 of the paper) must be solved numerically.  This module offers several
complementary strategies:

* :func:`integrate_to_steady_state` -- follow the flow until the derivative
  norm is negligible.  Robust (the models are globally attracting for valid
  parameters) but slower.
* :func:`newton_steady_state` -- damped Newton with a finite-difference
  Jacobian.  Fast local convergence; used to polish integration output.
* :func:`anderson_steady_state` -- Anderson-accelerated fixed-point
  iteration on ``y + dt*f(y)``; derivative-free middle ground.
* :func:`scipy_steady_state` -- :func:`scipy.optimize.root` wrapper.
* :func:`find_steady_state` -- the production driver: integrate, then polish
  with Newton, falling back gracefully.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import optimize

from repro.obs import current_registry, current_tracer
from repro.ode.integrators import RHS, integrate_scipy
from repro.ode.types import IntegrationResult, SteadyStateResult

__all__ = [
    "SteadyStateOptions",
    "PathResult",
    "residual_norm",
    "integrate_to_steady_state",
    "newton_steady_state",
    "anderson_steady_state",
    "scipy_steady_state",
    "find_steady_state",
    "solve_path",
]


@dataclass(frozen=True)
class SteadyStateOptions:
    """Tuning knobs for the steady-state drivers.

    Attributes
    ----------
    tol:
        Convergence threshold on the scaled residual
        ``||f(y)||_inf / max(1, ||y||_inf)``.
    t_block:
        Length of each integration block for the integrate-to-convergence
        driver; the residual is checked after every block.
    max_blocks:
        Maximum number of integration blocks before giving up.
    max_newton_iter:
        Iteration cap for the Newton polisher.
    fd_eps:
        Relative perturbation for the finite-difference Jacobian.
    nonnegative:
        Project iterates onto the nonnegative orthant (peer populations can
        never be negative; Newton steps occasionally overshoot).
    """

    tol: float = 1e-10
    t_block: float = 500.0
    max_blocks: int = 200
    max_newton_iter: int = 50
    fd_eps: float = 1e-7
    nonnegative: bool = True


def residual_norm(rhs: RHS, y: np.ndarray, t: float = 0.0) -> float:
    """Scaled residual ``||f(t, y)||_inf / max(1, ||y||_inf)``."""
    y = np.asarray(y, dtype=float)
    f = np.asarray(rhs(t, y), dtype=float)
    scale = max(1.0, float(np.max(np.abs(y))) if y.size else 1.0)
    return float(np.max(np.abs(f))) / scale if f.size else 0.0


def integrate_to_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
) -> SteadyStateResult:
    """Follow the flow of ``dy/dt = f(t, y)`` until it stops moving.

    Integrates in blocks of ``options.t_block`` time units, checking the
    scaled residual after each block.  Converges for any globally attracting
    system, which the paper's fluid models are whenever their stability
    conditions hold.
    """
    opts = options or SteadyStateOptions()
    y = np.array(y0, dtype=float)
    t = 0.0
    last_traj: IntegrationResult | None = None
    for block in range(1, opts.max_blocks + 1):
        last_traj = integrate_scipy(rhs, y, (t, t + opts.t_block), rtol=1e-10, atol=1e-12)
        if not last_traj.success:
            return SteadyStateResult(
                state=last_traj.final_state,
                residual=residual_norm(rhs, last_traj.final_state, last_traj.final_time),
                converged=False,
                n_iterations=block,
                method="integrate",
                trajectory=last_traj,
            )
        y = last_traj.final_state.copy()
        if opts.nonnegative:
            np.clip(y, 0.0, None, out=y)
        t = last_traj.final_time
        res = residual_norm(rhs, y, t)
        if res < opts.tol:
            return SteadyStateResult(
                state=y,
                residual=res,
                converged=True,
                n_iterations=block,
                method="integrate",
                trajectory=last_traj,
            )
    return SteadyStateResult(
        state=y,
        residual=residual_norm(rhs, y, t),
        converged=False,
        n_iterations=opts.max_blocks,
        method="integrate",
        trajectory=last_traj,
    )


class _CountingRHS:
    """RHS wrapper that tallies scalar-equivalent evaluations.

    A 2-D call with ``k`` columns counts as ``k`` evaluations, so the
    counter measures *work requested of the model*, not Python call
    overhead -- warm-start savings show up in it, Jacobian batching does
    not (batching saves interpreter time, not model evaluations).
    """

    __slots__ = ("rhs", "evals", "batch_key")

    def __init__(self, rhs: RHS):
        self.rhs = rhs
        self.evals = 0
        self.batch_key = _rhs_batch_key(rhs)

    def __call__(self, t: float, y: np.ndarray) -> np.ndarray:
        out = self.rhs(t, y)
        self.evals += y.shape[1] if getattr(y, "ndim", 1) == 2 else 1
        return out

    def publish(self, counter: str) -> None:
        """Fold the tally into ``counter`` and the canonical total."""
        reg = current_registry()
        if reg.enabled and self.evals:
            reg.inc(counter, self.evals)
            reg.inc("ode.rhs_evals", self.evals)


#: per-RHS-function memo of whether it accepts 2-D state batches
#: (scipy ``vectorized`` convention: ``(dim, k) -> (dim, k)``).
_BATCH_CAPABLE: "weakref.WeakKeyDictionary[object, bool]" = weakref.WeakKeyDictionary()


def _rhs_batch_key(rhs: RHS) -> object:
    """Key batch capability by the underlying function, not the instance.

    Bound methods are recreated on every attribute access and counting
    wrappers are per-solve, so caching on the callable object itself would
    never hit; ``__func__`` (or a wrapper's forwarded key) is stable.
    """
    forwarded = getattr(rhs, "batch_key", None)
    if forwarded is not None:
        return forwarded
    return getattr(rhs, "__func__", rhs)


def _batch_capability(rhs: RHS) -> bool | None:
    try:
        return _BATCH_CAPABLE.get(_rhs_batch_key(rhs))
    except TypeError:  # unhashable / non-weakrefable callable
        return False


def _remember_batch_capability(rhs: RHS, capable: bool) -> None:
    try:
        _BATCH_CAPABLE[_rhs_batch_key(rhs)] = capable
    except TypeError:
        pass


def _batched_jacobian_columns(
    rhs: RHS, y: np.ndarray, steps: np.ndarray
) -> np.ndarray | None:
    """All ``n`` perturbed evaluations in one 2-D RHS call, if supported.

    The first probe of a given RHS function verifies column 0 against a
    scalar evaluation before trusting the batch: an RHS written for 1-D
    states may broadcast into the right *shape* while computing the wrong
    values (e.g. a ``sum`` over all elements instead of per column).
    Verified capability is memoised per underlying function.
    """
    capable = _batch_capability(rhs)
    if capable is False:
        return None
    yp = y[:, None] + np.diag(steps)
    try:
        fp = np.asarray(rhs(0.0, yp), dtype=float)
    except Exception:
        fp = None
    if fp is None or fp.shape != yp.shape:
        _remember_batch_capability(rhs, False)
        return None
    if capable is None:
        reference = np.asarray(rhs(0.0, yp[:, 0].copy()), dtype=float)
        if not np.allclose(fp[:, 0], reference, rtol=1e-9, atol=1e-12):
            _remember_batch_capability(rhs, False)
            return None
        _remember_batch_capability(rhs, True)
    return fp


def _numerical_jacobian(rhs: RHS, y: np.ndarray, eps_rel: float) -> np.ndarray:
    """Forward-difference Jacobian of ``f(0, .)`` at ``y``.

    The ``n`` column perturbations are evaluated in a single batched 2-D
    RHS call when the RHS supports it (see :func:`_batched_jacobian_columns`);
    otherwise the classic one-column-per-call loop runs.
    """
    n = y.size
    f0 = np.asarray(rhs(0.0, y), dtype=float)
    steps = eps_rel * np.maximum(np.abs(y), 1.0)
    reg = current_registry()
    if reg.enabled:
        reg.inc("ode.newton.jacobian_builds")
    fp = _batched_jacobian_columns(rhs, y, steps)
    if fp is not None:
        if reg.enabled:
            reg.inc("ode.newton.jacobian_batched")
        return (fp - f0[:, None]) / steps[None, :]
    if reg.enabled:
        reg.inc("ode.newton.jacobian_loops")
    jac = np.empty((n, n))
    for j in range(n):
        yp = y.copy()
        yp[j] += steps[j]
        jac[:, j] = (np.asarray(rhs(0.0, yp), dtype=float) - f0) / steps[j]
    return jac


def newton_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
) -> SteadyStateResult:
    """Damped Newton iteration on ``f(0, y) = 0``.

    A backtracking line search halves the step until the residual norm
    decreases (Armijo-free sufficient-decrease on ``||f||``); iterates are
    optionally projected onto the nonnegative orthant.
    """
    counted = _CountingRHS(rhs)
    try:
        return _newton_steady_state(counted, y0, options)
    finally:
        counted.publish("ode.newton.rhs_evals")


def _newton_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
) -> SteadyStateResult:
    opts = options or SteadyStateOptions()
    y = np.array(y0, dtype=float)
    for it in range(1, opts.max_newton_iter + 1):
        f = np.asarray(rhs(0.0, y), dtype=float)
        res = residual_norm(rhs, y)
        if res < opts.tol:
            return SteadyStateResult(
                state=y, residual=res, converged=True, n_iterations=it - 1, method="newton"
            )
        jac = _numerical_jacobian(rhs, y, opts.fd_eps)
        try:
            step = np.linalg.solve(jac, -f)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(jac, -f, rcond=None)[0]
        fnorm = float(np.linalg.norm(f))
        alpha = 1.0
        for _ in range(30):
            y_trial = y + alpha * step
            if opts.nonnegative:
                y_trial = np.clip(y_trial, 0.0, None)
            f_trial = np.asarray(rhs(0.0, y_trial), dtype=float)
            if float(np.linalg.norm(f_trial)) < fnorm:
                break
            alpha *= 0.5
        else:
            # No decrease along the Newton direction: report non-convergence.
            return SteadyStateResult(
                state=y, residual=res, converged=False, n_iterations=it, method="newton"
            )
        y = y_trial
    res = residual_norm(rhs, y)
    return SteadyStateResult(
        state=y,
        residual=res,
        converged=res < opts.tol,
        n_iterations=opts.max_newton_iter,
        method="newton",
    )


def anderson_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
    *,
    dt: float = 1.0,
    memory: int = 5,
    max_iter: int = 2000,
) -> SteadyStateResult:
    """Anderson-accelerated fixed-point iteration.

    Solves ``g(y) = y`` for ``g(y) = y + dt*f(0, y)`` (an explicit Euler
    picture of the flow), combining the last ``memory`` residuals by
    least-squares extrapolation.  Derivative-free, often dramatically faster
    than plain iteration on stiff-ish contraction maps.
    """
    counted = _CountingRHS(rhs)
    try:
        return _anderson_steady_state(
            counted, y0, options, dt=dt, memory=memory, max_iter=max_iter
        )
    finally:
        counted.publish("ode.anderson.rhs_evals")


def _anderson_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
    *,
    dt: float,
    memory: int,
    max_iter: int,
) -> SteadyStateResult:
    opts = options or SteadyStateOptions()
    y = np.array(y0, dtype=float)

    def g(v: np.ndarray) -> np.ndarray:
        out = v + dt * np.asarray(rhs(0.0, v), dtype=float)
        if opts.nonnegative:
            out = np.clip(out, 0.0, None)
        return out

    ys: list[np.ndarray] = []
    gs: list[np.ndarray] = []
    for it in range(1, max_iter + 1):
        gy = g(y)
        ys.append(y.copy())
        gs.append(gy.copy())
        if len(ys) > memory + 1:
            ys.pop(0)
            gs.pop(0)
        res = residual_norm(rhs, y)
        if res < opts.tol:
            return SteadyStateResult(
                state=y, residual=res, converged=True, n_iterations=it - 1, method="anderson"
            )
        m = len(ys) - 1
        if m == 0:
            y = gy
            continue
        # Residual differences matrix; solve the least-squares mixing problem.
        f_list = [gs[k] - ys[k] for k in range(len(ys))]
        df = np.stack([f_list[k + 1] - f_list[k] for k in range(m)], axis=1)
        try:
            gamma = np.linalg.lstsq(df, f_list[-1], rcond=None)[0]
        except np.linalg.LinAlgError:
            gamma = np.zeros(m)
        y_new = gs[-1].copy()
        for k in range(m):
            y_new -= gamma[k] * (gs[k + 1] - gs[k])
        if opts.nonnegative:
            np.clip(y_new, 0.0, None, out=y_new)
        if not np.all(np.isfinite(y_new)):
            y = gy  # fall back to the plain fixed-point step
        else:
            y = y_new
    res = residual_norm(rhs, y)
    return SteadyStateResult(
        state=y, residual=res, converged=res < opts.tol, n_iterations=max_iter, method="anderson"
    )


def scipy_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
    *,
    method: str = "hybr",
) -> SteadyStateResult:
    """Locate the root of ``f(0, y)`` with :func:`scipy.optimize.root`."""
    opts = options or SteadyStateOptions()
    counted = _CountingRHS(rhs)

    def fun(y: np.ndarray) -> np.ndarray:
        return np.asarray(counted(0.0, y), dtype=float)

    sol = optimize.root(fun, np.asarray(y0, dtype=float), method=method)
    y = np.asarray(sol.x, dtype=float)
    if opts.nonnegative:
        y = np.clip(y, 0.0, None)
    res = residual_norm(counted, y)
    counted.publish("ode.scipy_root.rhs_evals")
    return SteadyStateResult(
        state=y,
        residual=res,
        converged=res < opts.tol,
        n_iterations=int(sol.nfev),
        method=f"scipy-{method}",
    )


def find_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
) -> SteadyStateResult:
    """Production driver: integrate toward the attractor, then Newton-polish.

    Integration supplies a basin-of-attraction-safe approach; Newton supplies
    the final digits cheaply.  If Newton fails to improve, the integration
    answer is returned (tagged with its own convergence status).
    """
    with current_tracer().span("ode.find_steady_state", dim=int(np.size(y0))):
        result = _find_steady_state(rhs, y0, options)
    reg = current_registry()
    if reg.enabled:
        reg.inc("ode.steady_state.solves")
        reg.inc("ode.steady_state.iterations", result.n_iterations)
        if not result.converged:
            reg.inc("ode.steady_state.not_converged")
    return result


def _find_steady_state(
    rhs: RHS,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
) -> SteadyStateResult:
    opts = options or SteadyStateOptions()
    coarse_opts = SteadyStateOptions(
        tol=max(opts.tol, 1e-8),
        t_block=opts.t_block,
        max_blocks=opts.max_blocks,
        max_newton_iter=opts.max_newton_iter,
        fd_eps=opts.fd_eps,
        nonnegative=opts.nonnegative,
    )
    coarse = integrate_to_steady_state(rhs, y0, coarse_opts)
    polished = newton_steady_state(rhs, coarse.state, opts)
    if polished.converged and polished.residual <= coarse.residual:
        return SteadyStateResult(
            state=polished.state,
            residual=polished.residual,
            converged=True,
            n_iterations=coarse.n_iterations + polished.n_iterations,
            method="integrate+newton",
            trajectory=coarse.trajectory,
        )
    if coarse.residual < opts.tol:
        return coarse
    # Neither phase met the strict tolerance: return the better of the two.
    best = polished if polished.residual < coarse.residual else coarse
    return SteadyStateResult(
        state=best.state,
        residual=best.residual,
        converged=best.residual < opts.tol,
        n_iterations=coarse.n_iterations + polished.n_iterations,
        method="integrate+newton",
        trajectory=coarse.trajectory,
    )


@dataclass(frozen=True)
class PathResult:
    """Outcome of a :func:`solve_path` continuation sweep.

    Attributes
    ----------
    parameters:
        The parameter points, in sweep order.
    results:
        One :class:`SteadyStateResult` per point (same order).
    warm_hits:
        Points solved by Newton directly from the previous stationary point.
    cold_solves:
        Points that needed the full integrate+Newton driver (always
        includes the first point unless an initial guess converged).
    """

    parameters: tuple
    results: tuple[SteadyStateResult, ...]
    warm_hits: int
    cold_solves: int

    @property
    def states(self) -> list[np.ndarray]:
        return [r.state for r in self.results]

    @property
    def converged(self) -> bool:
        return all(r.converged for r in self.results)


def solve_path(
    make_rhs: Callable[[object], RHS],
    parameters: Sequence | Iterable,
    y0: np.ndarray,
    options: SteadyStateOptions | None = None,
    *,
    warm_start: bool = True,
) -> PathResult:
    """Continuation sweep: stationary points along a parameter path.

    Solves ``f_p(y) = 0`` for each ``p`` in ``parameters`` (in order),
    where ``make_rhs(p)`` builds the RHS for one parameter point.  With
    ``warm_start`` (the default) each stationary point seeds a direct
    Newton solve at the next point -- natural parameter continuation --
    which skips the coarse integration phase entirely whenever consecutive
    points are close.  If Newton fails to converge from the warm guess,
    the point falls back to the cold :func:`find_steady_state` driver
    started from ``y0``, and the sweep continues.

    With ``warm_start=False`` every point runs the cold driver from
    ``y0``; results are identical within solver tolerance, which is
    exactly what the equivalence tests assert.

    Observability: increments ``ode.solve_path.points``,
    ``ode.solve_path.warm_hits`` and ``ode.solve_path.cold_solves``.
    """
    opts = options or SteadyStateOptions()
    y0 = np.asarray(y0, dtype=float)
    params = tuple(parameters)
    results: list[SteadyStateResult] = []
    warm_hits = 0
    cold_solves = 0
    guess: np.ndarray | None = None
    with current_tracer().span("ode.solve_path", points=len(params)):
        for p in params:
            rhs = make_rhs(p)
            result: SteadyStateResult | None = None
            if warm_start and guess is not None:
                polished = newton_steady_state(rhs, guess, opts)
                if polished.converged:
                    result = polished
                    warm_hits += 1
            if result is None:
                result = find_steady_state(rhs, y0, opts)
                cold_solves += 1
            guess = result.state
            results.append(result)
    reg = current_registry()
    if reg.enabled:
        reg.inc("ode.solve_path.points", len(params))
        reg.inc("ode.solve_path.warm_hits", warm_hits)
        reg.inc("ode.solve_path.cold_solves", cold_solves)
    return PathResult(
        parameters=params,
        results=tuple(results),
        warm_hits=warm_hits,
        cold_solves=cold_solves,
    )
