"""Time-grid and dense-output helpers for the ODE layer."""

from __future__ import annotations

import numpy as np

from repro.ode.types import IntegrationResult

__all__ = ["time_grid", "sample_dense"]


def time_grid(t0: float, t1: float, n: int = 200, *, spacing: str = "linear") -> np.ndarray:
    """Build a sampling grid over ``[t0, t1]``.

    ``spacing`` is ``"linear"`` or ``"log"``.  Log spacing requires
    ``t0 > 0`` and concentrates samples near ``t0``, which suits transient
    studies of the fluid models (the interesting dynamics are early).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not t1 > t0:
        raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
    if spacing == "linear":
        return np.linspace(t0, t1, n)
    if spacing == "log":
        if t0 <= 0:
            raise ValueError("log spacing requires t0 > 0")
        return np.geomspace(t0, t1, n)
    raise ValueError(f"unknown spacing {spacing!r}; expected 'linear' or 'log'")


def sample_dense(result: IntegrationResult, times: np.ndarray) -> np.ndarray:
    """Linearly interpolate a trajectory onto ``times``.

    Returns an array of shape ``(len(times), dim)``.  Times outside the
    trajectory's span raise ``ValueError`` rather than extrapolating.
    """
    times = np.asarray(times, dtype=float)
    t = result.t
    if times.size and (times.min() < t[0] - 1e-12 or times.max() > t[-1] + 1e-12):
        raise ValueError(
            f"requested times [{times.min()}, {times.max()}] outside trajectory span "
            f"[{t[0]}, {t[-1]}]"
        )
    out = np.empty((times.size, result.dim))
    for j in range(result.dim):
        out[:, j] = np.interp(times, t, result.y[:, j])
    return out
