"""NDJSON journal of a live service run, with size-based rotation.

The journal records exactly the operations the live service applied, in
order -- the only nondeterministic input of a run.  Everything else (the
scenario, its seeds, every internal simulation event) is derived
deterministically from them, which is what makes
:func:`repro.service.replay.replay_journal` exact.

Record vocabulary (one JSON object per line, ``sort_keys`` for byte
stability):

``{"op": "header", "version": 1, "spec": {...}}``
    First record of a journal: the full scenario document, so a journal
    file is self-contained.
``{"op": "advance", "t": T}``
    The simulator was advanced to virtual time ``T`` (one ``run_until``
    call; Python's shortest-repr floats round-trip exactly through JSON).
``{"op": "event", "t": T, "event": {...}}``
    One :class:`~repro.service.events.LiveEvent` applied at virtual time
    ``T`` (the current time after the preceding advance).
``{"op": "close", "t": T, "digest": "...", "events": N}``
    Final record: the virtual horizon reached, a SHA-256 digest of the
    run's summary (replay verifies against it) and the number of events
    applied.

Rotation keeps unbounded runs bounded on disk: when the active segment
exceeds ``rotate_bytes`` it is renamed to ``<path>.<n>`` (``n`` counting
up from 1 in rotation order) and writing continues on a fresh ``<path>``.
:func:`read_journal` stitches the segments back together transparently,
so readers never care whether rotation happened.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping

from repro.service.events import LiveEvent

__all__ = ["JOURNAL_VERSION", "JournalError", "JournalWriter", "read_journal"]

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal file is malformed, truncated or version-incompatible."""


def _segment_paths(path: Path) -> list[Path]:
    """All segments of a journal, oldest first (rotated then active)."""
    rotated = []
    n = 1
    while (seg := path.with_name(f"{path.name}.{n}")).exists():
        rotated.append(seg)
        n += 1
    return rotated + [path]


class JournalWriter:
    """Append-only NDJSON journal with size-based rotation.

    Usable as a context manager; :meth:`close` seals the journal with the
    final record and is idempotent.  Every record is flushed as written --
    a crashed service loses at most the record being written, and a
    headerless or unsealed journal is detected on read.
    """

    def __init__(self, path: str | Path, *, rotate_bytes: int | None = None):
        if rotate_bytes is not None and rotate_bytes < 1024:
            raise ValueError(f"rotate_bytes must be >= 1024, got {rotate_bytes}")
        self.path = Path(path)
        self.rotate_bytes = rotate_bytes
        self.segments = 0  #: rotations performed so far
        self.records = 0  #: records written (all segments)
        # Opening "w" truncates the active file, but rotated ``<path>.N``
        # segments from a previous run at this path would survive -- and
        # read_journal stitches any existing segments oldest-first, so they
        # would silently corrupt this run's replay.  Remove them up front.
        for stale in _segment_paths(self.path)[:-1]:
            stale.unlink()
        self._fh = self.path.open("w")
        self._closed = False

    # ----- record writers ---------------------------------------------------------

    def write_header(self, spec_mapping: Mapping) -> None:
        self._write({"op": "header", "version": JOURNAL_VERSION, "spec": dict(spec_mapping)})

    def advance(self, t: float) -> None:
        self._write({"op": "advance", "t": t})

    def event(self, t: float, event: LiveEvent) -> None:
        self._write({"op": "event", "t": t, "event": event.to_dict()})

    def close(
        self, *, final_t: float | None = None, digest: str | None = None, events: int = 0
    ) -> None:
        """Seal with a close record (when given a digest) and close the file."""
        if self._closed:
            return
        if digest is not None:
            self._write({"op": "close", "t": final_t, "digest": digest, "events": events})
        self._fh.close()
        self._closed = True

    def flush(self) -> None:
        if not self._closed:
            self._fh.flush()

    # ----- plumbing ---------------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._closed:
            raise JournalError(f"journal {self.path} is already closed")
        self._maybe_rotate()
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()
        self.records += 1

    def _maybe_rotate(self) -> None:
        if self.rotate_bytes is None or self._fh.tell() < self.rotate_bytes:
            return
        self._fh.close()
        self.segments += 1
        self.path.rename(self.path.with_name(f"{self.path.name}.{self.segments}"))
        self._fh = self.path.open("w")

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str | Path) -> Iterator[dict]:
    """Yield every record of a journal, stitching rotated segments.

    Validates shape as it goes: the first record must be a version-
    compatible header, every record needs an ``op``.  Raises
    :class:`JournalError` on malformed input (including a missing file).
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    first = True
    for segment in _segment_paths(path):
        with segment.open() as fh:
            for lineno, line in enumerate(fh, 1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise JournalError(
                        f"{segment}:{lineno}: malformed journal line: {exc}"
                    ) from None
                if not isinstance(record, dict) or "op" not in record:
                    raise JournalError(
                        f"{segment}:{lineno}: journal records need an 'op' field"
                    )
                if first:
                    if record["op"] != "header":
                        raise JournalError(
                            f"{segment}:{lineno}: journal must start with a "
                            f"header record, got op={record['op']!r}"
                        )
                    if record.get("version") != JOURNAL_VERSION:
                        raise JournalError(
                            f"journal version {record.get('version')!r} is not "
                            f"supported (expected {JOURNAL_VERSION})"
                        )
                    first = False
                yield record
    if first:
        raise JournalError(f"journal {path} is empty")
