"""The synchronous heart of the live service.

A :class:`ServiceCore` owns one live
:class:`~repro.sim.system.SimulationSystem` compiled from a
:class:`~repro.scenario.ScenarioSpec`, exactly as the batch driver would
build it (same seeds, same sampler, same background arrival process), and
exposes three operations:

* :meth:`advance` -- run the simulator forward to a virtual time (the
  wall-clock mapping lives in the asyncio shell; replay feeds recorded
  targets instead);
* :meth:`apply` -- apply one external :class:`~repro.service.events.LiveEvent`
  at the current virtual time;
* :meth:`stats` / :meth:`query_summary` -- online queries, **pure reads**
  by construction so a queried live run stays bit-identical to its
  query-free replay.

Every advance and event is journaled exactly as applied; those records are
the run's only nondeterministic input, which is the whole determinism
argument for :func:`repro.service.replay.replay_journal`.
"""

from __future__ import annotations

import hashlib
import json

from repro.scenario.compat import summary_to_dict
from repro.scenario.spec import ScenarioSpec, spec_to_dict
from repro.service.events import LiveEvent, LiveEventKind
from repro.service.journal import JournalWriter
from repro.sim.metrics import SimulationSummary
from repro.sim.scenarios import build_simulation
from repro.scenario.compile import compile_sim

__all__ = ["ServiceCore", "summary_digest"]


def summary_digest(summary: SimulationSummary) -> str:
    """SHA-256 digest of a summary, covering every field bit-exactly.

    Extends :func:`~repro.scenario.compat.summary_to_dict` (user-time
    metrics) with the time-averaged population fields, so two summaries
    share a digest iff every float in them is bit-identical (Python floats
    serialise via shortest-repr, which round-trips exactly).
    """

    def arr(values) -> list:
        return [float(v) for v in values]

    payload = summary_to_dict(summary)
    payload["mean_downloaders"] = {
        f"{g}:{f}": arr(v) for (g, f), v in sorted(summary.mean_downloaders.items())
    }
    payload["mean_seeds"] = {
        f"{g}:{f}": arr(v) for (g, f), v in sorted(summary.mean_seeds.items())
    }
    payload["mean_stage_downloaders"] = (
        {
            f"{g}:{f}": [arr(row) for row in v]
            for (g, f), v in sorted(summary.mean_stage_downloaders.items())
        }
        if summary.mean_stage_downloaders is not None
        else None
    )
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


class ServiceCore:
    """Live simulation state plus the journal of everything done to it.

    Parameters
    ----------
    spec:
        The scenario to serve.  Its ``sim`` section supplies the seed, the
        virtual horizon ``t_end`` (advances clamp there) and the sampler;
        its ``arrivals`` section keeps running as background traffic in
        virtual time alongside the ingested events.
    journal:
        Where to record the run; ``None`` (e.g. during replay) disables
        recording.
    """

    def __init__(self, spec: ScenarioSpec, *, journal: JournalWriter | None = None):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"expected a ScenarioSpec, got {type(spec).__name__}")
        self.spec = spec
        self.config = compile_sim(spec)
        self.system, self.arrivals = build_simulation(self.config)
        self.journal = journal
        self.t_end = self.config.t_end
        self.events_applied = 0
        self.stale_events = 0
        self.started = False
        self.summary: SimulationSummary | None = None
        self.digest: str | None = None

    @property
    def now(self) -> float:
        return self.system.now

    @property
    def finished(self) -> bool:
        return self.summary is not None

    # ----- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Write the journal header and start sampler/background arrivals."""
        if self.started:
            raise RuntimeError("service core already started")
        if self.journal is not None:
            self.journal.write_header(spec_to_dict(self.spec))
        config = self.config
        self.system.start_sampler(config.sample_interval, config.t_end)
        if config.initial_burst:
            options_fn = self.arrivals.per_user_options
            for _ in range(config.initial_burst):
                files = config.correlation.sample_file_set(self.system.rng.files)
                options = options_fn(self.system.rng.misc) if options_fn else {}
                self.system.spawn_user(self.arrivals.behavior_factory, files, **options)
        if config.arrivals_enabled:
            self.arrivals.start()
        self.started = True

    def advance(self, t: float) -> bool:
        """Run the simulator to virtual time ``t`` (clamped to ``t_end``).

        Targets at or before the current time are skipped entirely -- not
        run *and* not journaled -- so the journal holds exactly the
        ``run_until`` calls that happened (materialisation points move
        float results, so even a no-op ``run_until`` would have to be
        replayed to stay exact; easiest is for it never to exist).
        Returns whether the simulator moved.
        """
        self._check_live()
        t = min(t, self.t_end)
        if t <= self.now:
            return False
        self.system.run_until(t)
        if self.journal is not None:
            self.journal.advance(t)
        return True

    def check_event(self, event: LiveEvent) -> None:
        """Validate ``event`` against scenario bounds; raises ``ValueError``.

        Shared by :meth:`apply` and the service's ``ingest`` path: the
        asyncio shell rejects out-of-range events *before* acknowledging
        or queueing them, so a malformed request over the wire can never
        reach the pump task.
        """
        if event.files is not None:
            bad = [f for f in event.files if not 0 <= f < self.config.params.num_files]
            if bad:
                raise ValueError(
                    f"unknown file id(s) {bad}; this scenario has "
                    f"{self.config.params.num_files} files"
                )

    def apply(self, event: LiveEvent) -> dict:
        """Apply one external event at the current virtual time.

        Returns an acknowledgement dict (spawned ``user_id``, ``stale``
        flag, ...).  Invalid events (unknown files) raise *before* touching
        journal or RNG; stale events (unknown/departed target user) are
        journaled no-ops so replay sees the identical sequence.
        """
        self._check_live()
        t = self.now
        ack: dict = {"t": t, "kind": event.kind.value}
        self.check_event(event)
        if self.journal is not None:
            self.journal.event(t, event)
        system = self.system
        if event.kind in (LiveEventKind.ARRIVAL, LiveEventKind.REQUEST):
            files = event.files
            if files is None:
                files = self.config.correlation.sample_file_set(system.rng.files)
            options = {}
            if self.arrivals.per_user_options is not None:
                options = self.arrivals.per_user_options(system.rng.misc)
            ack["user_id"] = system.spawn_user(
                self.arrivals.behavior_factory, tuple(files), **options
            )
        elif event.kind is LiveEventKind.DEPARTURE:
            behavior = system.behaviors.get(event.user_id)
            if behavior is None:
                ack["stale"] = True
                self.stale_events += 1
            else:
                ack["timers_fired"] = behavior.expire_timers_now()
        else:  # RHO_CHANGE
            behavior = system.behaviors.get(event.user_id)
            if behavior is None or not hasattr(behavior, "set_rho"):
                ack["stale"] = True
                self.stale_events += 1
            else:
                behavior.set_rho(event.rho)
                system.flush()
        self.events_applied += 1
        return ack

    def finish(self) -> SimulationSummary:
        """Finalise accounting, seal the journal, return the summary."""
        if self.summary is not None:
            return self.summary
        if not self.started:
            raise RuntimeError("service core never started")
        self.system.sync_accounting()
        summary = self.system.metrics.summarize(
            warmup=self.config.warmup, horizon=self.now
        )
        self.digest = summary_digest(summary)
        if self.journal is not None:
            self.journal.close(
                final_t=self.now, digest=self.digest, events=self.events_applied
            )
        self.summary = summary
        return summary

    # ----- online queries (pure reads) --------------------------------------------

    def stats(self) -> dict:
        """Cheap structural snapshot: populations, counters, clock.

        A pure read -- it must stay one, or queried live runs would
        diverge from their replays.
        """
        system = self.system
        downloaders = seeds = virtual_seeds = 0
        for group in system.groups.values():
            for swarm in group.swarms.values():
                downloaders += len(swarm.downloaders)
                seeds += len(swarm.real_seeds)
                virtual_seeds += len(swarm.virtual_seeds)
        return {
            "virtual_time": self.now,
            "t_end": self.t_end,
            "eta": system.eta,
            "users_active": len(system.behaviors),
            "users_seen": len(system.metrics.records),
            "downloaders": downloaders,
            "seeds": seeds,
            "virtual_seeds": virtual_seeds,
            "events_applied": self.events_applied,
            "events_stale": self.stale_events,
        }

    def query_summary(self) -> dict:
        """Online per-class metrics over completed users so far (pure read)."""
        summary = self.system.metrics.summarize(
            warmup=self.config.warmup, horizon=self.now
        )
        return summary_to_dict(summary)

    def _check_live(self) -> None:
        if not self.started:
            raise RuntimeError("service core not started; call start() first")
        if self.finished:
            raise RuntimeError("service core already finished")
