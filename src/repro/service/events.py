"""The external event vocabulary of the live swarm service.

A :class:`LiveEvent` is one request from the outside world -- a tracker
frontend, a load generator, a test -- asking the service to mutate its
live swarm state.  Four kinds exist:

``arrival``
    A user visits the indexing server.  With explicit ``files`` the user
    requests exactly those; without, the file set is drawn from the
    scenario's correlation workload (consuming the system's seeded RNG, so
    replays draw identically).
``request``
    Like ``arrival`` but ``files`` is mandatory -- the caller knows the
    exact multi-file request (e.g. a real tracker log being streamed in).
``departure``
    Cut short the lingering seed phase of user ``user_id``: every pending
    lifecycle timer fires now, so the user stops seeding and departs at
    the current virtual time.  Users still mid-download are unaffected
    (the fluid model has no mid-download aborts either); unknown or
    already-departed users make the event stale, counted but harmless.
``rho_change``
    Set the collaboration ratio of CMFSD user ``user_id`` to ``rho``
    (stale for non-collaborative users).

Events serialise to flat JSON-safe dicts (the journal's and the TCP
protocol's wire form); :meth:`LiveEvent.from_dict` is the strict inverse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

__all__ = ["LiveEvent", "LiveEventKind"]


class LiveEventKind(enum.Enum):
    """What the outside world can ask of the live service."""

    ARRIVAL = "arrival"
    REQUEST = "request"
    DEPARTURE = "departure"
    RHO_CHANGE = "rho_change"


@dataclass(frozen=True)
class LiveEvent:
    """One external request to the service (see module docstring)."""

    kind: LiveEventKind
    files: tuple[int, ...] | None = None  #: explicit file set (arrival/request)
    user_id: int | None = None  #: target user (departure/rho_change)
    rho: float | None = None  #: new collaboration ratio (rho_change)

    def __post_init__(self) -> None:
        if self.files is not None:
            object.__setattr__(self, "files", tuple(int(f) for f in self.files))
            if not self.files:
                raise ValueError("files must be non-empty when given")
        if self.kind is LiveEventKind.REQUEST and self.files is None:
            raise ValueError("a request event needs an explicit file set")
        if self.kind in (LiveEventKind.DEPARTURE, LiveEventKind.RHO_CHANGE):
            if self.user_id is None:
                raise ValueError(f"a {self.kind.value} event needs user_id")
        if self.kind is LiveEventKind.RHO_CHANGE:
            if self.rho is None or not 0.0 <= self.rho <= 1.0:
                raise ValueError(f"rho must be in [0, 1], got {self.rho}")

    # ----- wire form --------------------------------------------------------------

    def to_dict(self) -> dict:
        """Flat JSON-safe dict; ``None`` fields are omitted."""
        out: dict = {"kind": self.kind.value}
        if self.files is not None:
            out["files"] = list(self.files)
        if self.user_id is not None:
            out["user_id"] = self.user_id
        if self.rho is not None:
            out["rho"] = self.rho
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LiveEvent":
        """Strict inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {"kind", "files", "user_id", "rho"}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown event field(s): {sorted(extra)}")
        try:
            kind = LiveEventKind(payload["kind"])
        except KeyError:
            raise ValueError("event is missing 'kind'") from None
        except ValueError:
            raise ValueError(
                f"unknown event kind {payload['kind']!r}; expected one of "
                f"{[k.value for k in LiveEventKind]}"
            ) from None
        files = payload.get("files")
        user_id = payload.get("user_id")
        rho = payload.get("rho")
        return cls(
            kind=kind,
            files=tuple(files) if files is not None else None,
            user_id=int(user_id) if user_id is not None else None,
            rho=float(rho) if rho is not None else None,
        )

    # ----- convenience constructors -----------------------------------------------

    @classmethod
    def arrival(cls, files: tuple[int, ...] | None = None) -> "LiveEvent":
        return cls(kind=LiveEventKind.ARRIVAL, files=files)

    @classmethod
    def request(cls, files: tuple[int, ...]) -> "LiveEvent":
        return cls(kind=LiveEventKind.REQUEST, files=files)

    @classmethod
    def departure(cls, user_id: int) -> "LiveEvent":
        return cls(kind=LiveEventKind.DEPARTURE, user_id=user_id)

    @classmethod
    def rho_change(cls, user_id: int, rho: float) -> "LiveEvent":
        return cls(kind=LiveEventKind.RHO_CHANGE, user_id=user_id, rho=rho)
