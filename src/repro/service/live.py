"""The asyncio shell: bounded ingestion, backpressure, TCP, lifecycle.

:class:`SwarmService` wraps a :class:`~repro.service.core.ServiceCore` in
an event loop: external events land in a bounded ``asyncio.Queue``, a
single pump task drains it (advancing virtual time to the wall-clock
mapping before applying each event), and queries are answered inline from
the core's pure-read snapshots -- the loop interleaves them between event
applications, so ingestion never pauses for a query.

Backpressure is explicit rather than silent: the ingest queue is bounded
(``queue_capacity``) and the ``overflow`` policy decides what saturation
means -- ``"shed"`` drops the new event and counts it (a tracker that
would rather stay current than stall), ``"block"`` makes ``ingest()``
await space (a log replayer that must not lose events).  The counters
``service.ingest.{events,dropped,stale,errors}`` and the gauge
``service.ingest.queue_depth`` mirror into the ambient :mod:`repro.obs`
registry, and exact plain-int copies live on
:attr:`SwarmService.counters` for tests and status endpoints.

Wall clock maps to virtual time via ``time_scale`` (virtual seconds per
wall second), monotonically: the pump advances the simulator to
``elapsed * time_scale`` (clamped at the scenario's ``t_end``) before each
apply.  Tests and benchmarks can inject ``clock=...`` returning virtual
time directly, making runs wall-clock free.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Callable

from repro.obs import current_registry
from repro.scenario.spec import ScenarioSpec
from repro.service.core import ServiceCore
from repro.service.events import LiveEvent
from repro.service.journal import JournalWriter
from repro.sim.metrics import SimulationSummary

__all__ = ["SwarmService"]

_log = logging.getLogger(__name__)

_STOP = object()  # pump-loop sentinel; never journaled


class SwarmService:
    """Asyncio daemon serving one live scenario (see module docstring).

    Construction knobs default from the spec's ``service:`` section when
    present; explicit keyword arguments win over both.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        journal_path=None,
        rotate_bytes: int | None = None,
        time_scale: float | None = None,
        queue_capacity: int | None = None,
        overflow: str | None = None,
        clock: Callable[[], float] | None = None,
    ):
        svc = spec.service

        def pick(explicit, attr, default):
            if explicit is not None:
                return explicit
            if svc is not None:
                return getattr(svc, attr)
            return default

        journal_path = pick(journal_path, "journal", None)
        rotate_bytes = pick(rotate_bytes, "journal_rotate_bytes", None)
        self.time_scale = float(pick(time_scale, "time_scale", 1.0))
        self.queue_capacity = int(pick(queue_capacity, "queue_capacity", 1024))
        self.overflow = pick(overflow, "overflow", "shed")
        if self.overflow not in ("shed", "block"):
            raise ValueError(f"overflow must be 'shed' or 'block', got {self.overflow!r}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        journal = (
            JournalWriter(journal_path, rotate_bytes=rotate_bytes)
            if journal_path is not None
            else None
        )
        self.core = ServiceCore(spec, journal=journal)
        self.journal = journal
        self._clock = clock
        #: exact ingest accounting: accepted, shed, applied-but-stale,
        #: failed-to-apply (accepted events whose apply raised)
        self.counters = {"events": 0, "dropped": 0, "stale": 0, "errors": 0}
        self._queue: asyncio.Queue | None = None
        self._pending_puts = 0  #: block-mode ingests parked in queue.put()
        self._pump_task: asyncio.Task | None = None
        self._t0 = 0.0
        self._stopping = False
        self._summary: SimulationSummary | None = None

    # ----- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Start the core and the pump task; wall clock starts now."""
        if self._queue is not None:
            raise RuntimeError("service already started")
        self.core.start()
        self._queue = asyncio.Queue(maxsize=self.queue_capacity)
        self._t0 = time.monotonic()
        self._pump_task = asyncio.create_task(self._pump())

    async def stop(self) -> SimulationSummary:
        """Drain the ingest queue, seal the journal, return the summary.

        Idempotent.  The stop sentinel queues FIFO behind every accepted
        event, and the pump keeps draining past the sentinel until no
        block-mode ``ingest()`` is still parked in ``put()`` -- so every
        event acknowledged as accepted is applied before the journal
        closes, the clean-shutdown guarantee the tests pin.
        """
        if self._summary is not None:
            return self._summary
        if self._queue is None:
            raise RuntimeError("service never started")
        self._stopping = True
        await self._queue.put(_STOP)
        await self._pump_task
        self.core.advance(self.virtual_now())
        self._summary = self.core.finish()
        return self._summary

    def virtual_now(self) -> float:
        """Current virtual-time target (wall-clock mapped, or injected)."""
        if self._clock is not None:
            return self._clock()
        return (time.monotonic() - self._t0) * self.time_scale

    @property
    def digest(self) -> str | None:
        return self.core.digest

    # ----- ingestion --------------------------------------------------------------

    async def ingest(self, event: LiveEvent) -> bool:
        """Enqueue one event; returns whether it was accepted.

        ``shed`` overflow drops the event on a full queue (counted in
        ``counters["dropped"]`` and ``service.ingest.dropped``);
        ``block`` awaits queue space instead.
        """
        if self._queue is None:
            raise RuntimeError("service not started")
        if self._stopping:
            raise RuntimeError("service is stopping; no further ingestion")
        if not isinstance(event, LiveEvent):
            raise TypeError(f"expected a LiveEvent, got {type(event).__name__}")
        # Reject out-of-range events here, before they are acknowledged or
        # queued: an accepted event that raised inside the pump task would
        # otherwise be a remotely deliverable way to wedge the service.
        self.core.check_event(event)
        registry = current_registry()
        if self.overflow == "block":
            self._pending_puts += 1
            try:
                await self._queue.put(event)
            finally:
                self._pending_puts -= 1
        else:
            try:
                self._queue.put_nowait(event)
            except asyncio.QueueFull:
                self.counters["dropped"] += 1
                registry.inc("service.ingest.dropped")
                return False
        self.counters["events"] += 1
        registry.inc("service.ingest.events")
        registry.set_gauge("service.ingest.queue_depth", self._queue.qsize())
        return True

    async def _pump(self) -> None:
        """Apply queued events forever: advance virtual time, then apply."""
        queue = self._queue
        registry = current_registry()
        while True:
            item = await queue.get()
            if item is _STOP:
                queue.task_done()
                await self._drain_remaining(queue, registry)
                return
            self._apply_one(item, registry)
            queue.task_done()

    def _apply_one(self, event: LiveEvent, registry) -> None:
        """Advance-then-apply one event; a failure never kills the pump.

        Ingest-time validation makes apply failures unexpected, but an
        accepted event must not be able to take the service down: the
        failure is counted (``counters["errors"]``,
        ``service.ingest.errors``), logged, and the pump keeps draining.
        """
        try:
            self.core.advance(self.virtual_now())
            ack = self.core.apply(event)
        except Exception:
            self.counters["errors"] += 1
            registry.inc("service.ingest.errors")
            _log.exception("failed to apply ingested event %r; skipped", event)
        else:
            if ack.get("stale"):
                self.counters["stale"] += 1
                registry.inc("service.ingest.stale")
        registry.set_gauge("service.ingest.queue_depth", self._queue.qsize())

    async def _drain_remaining(self, queue: asyncio.Queue, registry) -> None:
        """Apply events that landed at/after the stop sentinel.

        Block-mode shutdown race: a producer that passed the ``_stopping``
        check can be parked in ``put()`` on a full queue while ``stop()``'s
        sentinel slips into the slot the pump just freed -- that event then
        lands *after* the sentinel, yet it was acknowledged and counted.
        Keep draining until the queue is empty and no ``put()`` is still in
        flight, so the clean-shutdown guarantee covers late racers too.
        """
        while self._pending_puts or not queue.empty():
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                await asyncio.sleep(0)  # let a parked put() land
                continue
            if item is not _STOP:  # concurrent stop() may double the sentinel
                self._apply_one(item, registry)
            queue.task_done()

    # ----- online queries (pure reads, served inline) -----------------------------

    def stats(self) -> dict:
        """Live structural snapshot plus ingest accounting."""
        out = self.core.stats()
        out["queue_depth"] = self._queue.qsize() if self._queue is not None else 0
        out["ingest"] = dict(self.counters)
        return out

    def summary_so_far(self) -> dict:
        """Per-class online/download metrics over completed users so far."""
        return self.core.query_summary()

    # ----- TCP face ---------------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Listen for line-JSON clients; returns the asyncio server.

        Protocol: one JSON object per line.  ``{"op": "event", "event":
        {...}}`` ingests (``op`` defaults to ``event``, so a bare event
        dict works too); ``{"op": "stats"}`` and ``{"op": "summary"}``
        query.  Each request gets one JSON response line.
        """
        return await asyncio.start_server(self._handle_client, host, port)

    async def _handle_client(self, reader, writer) -> None:
        try:
            while line := await reader.readline():
                if not line.strip():
                    continue
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("requests must be JSON objects")
            op = doc.pop("op", "event")
            if op == "event":
                event = LiveEvent.from_dict(doc.pop("event", doc))
                accepted = await self.ingest(event)
                return {"ok": True, "accepted": accepted}
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "summary":
                return {"ok": True, "summary": self.summary_so_far()}
            raise ValueError(f"unknown op {op!r}; expected event, stats or summary")
        except (ValueError, TypeError, RuntimeError) as exc:
            return {"ok": False, "error": str(exc)}
