"""Live swarm service: streaming event ingestion over the batch engines.

The paper's experiments are batch runs, but its subject -- trackers
mediating multi-file swarms under flash crowds and churn -- is an online
system.  This package turns the discrete-event backend into one:

* :class:`LiveEvent` / :class:`LiveEventKind` -- the external event
  vocabulary (arrival, request, departure, rho_change);
* :class:`ServiceCore` -- the synchronous heart: one live
  :class:`~repro.sim.system.SimulationSystem` built from a
  :class:`~repro.scenario.ScenarioSpec`, advanced in virtual time between
  real events, answering online queries from its metrics without pausing;
* :class:`SwarmService` -- the asyncio shell: a bounded ingest queue with
  shed/block backpressure, an optional line-JSON TCP listener, and
  ``service.ingest.{events,dropped,stale,errors,queue_depth}``
  observability counters;
* :class:`JournalWriter` / :func:`read_journal` -- every live run appends
  an NDJSON journal (with size-based rotation) of exactly the operations
  it applied;
* :func:`replay_journal` -- re-executes any journal deterministically as
  a batch experiment, reproducing the live run's
  :class:`~repro.sim.metrics.SimulationSummary` bit for bit (verified
  against the digest the live run sealed into the journal).

The record/replay loop is the point: a live run is wall-clock driven and
therefore unrepeatable, but the journal captures the only nondeterministic
input -- the interleaving of virtual-time advances and applied events --
so replaying it against the same seeded spec is exact.
"""

from repro.service.events import LiveEvent, LiveEventKind
from repro.service.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    read_journal,
)
from repro.service.core import ServiceCore, summary_digest
from repro.service.live import SwarmService
from repro.service.replay import ReplayMismatchError, ReplayResult, replay_journal

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "LiveEvent",
    "LiveEventKind",
    "ReplayMismatchError",
    "ReplayResult",
    "ServiceCore",
    "SwarmService",
    "read_journal",
    "replay_journal",
    "summary_digest",
]
