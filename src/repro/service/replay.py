"""Deterministic re-execution of a live-service journal.

A journal's records are the only nondeterministic input a live run had:
the scenario (seeds included) is in the header, and internal simulation
events are derived from it deterministically.  :func:`replay_journal`
therefore rebuilds the same :class:`~repro.service.core.ServiceCore` from
the header spec and replays the recorded advance/event sequence verbatim
-- producing the live run's :class:`~repro.sim.metrics.SimulationSummary`
bit for bit, and verifying it against the digest the live run sealed into
its close record.

Replay is a batch computation: no event loop, no wall clock, no queue.
A journal recorded under heavy load replays as fast as the simulator can
go.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.scenario.spec import spec_from_dict
from repro.service.core import ServiceCore, summary_digest
from repro.service.events import LiveEvent
from repro.service.journal import JournalError, read_journal
from repro.sim.metrics import SimulationSummary

__all__ = ["ReplayMismatchError", "ReplayResult", "replay_journal"]


class ReplayMismatchError(RuntimeError):
    """Replay produced a different summary than the journal's close record.

    Either the journal was edited, or determinism broke -- both are
    worth failing loudly over.
    """


@dataclass(frozen=True)
class ReplayResult:
    """What one replay produced (and what the journal claimed)."""

    summary: SimulationSummary
    digest: str  #: digest of the replayed summary
    recorded_digest: str | None  #: digest from the close record (None if unsealed)
    events_applied: int
    final_t: float

    @property
    def verified(self) -> bool:
        """Replay matched a sealed journal's digest."""
        return self.recorded_digest is not None and self.digest == self.recorded_digest


def replay_journal(path: str | Path, *, verify: bool = True) -> ReplayResult:
    """Re-execute a journal as a batch run (see module docstring).

    With ``verify`` (the default), a sealed journal whose replay diverges
    raises :class:`ReplayMismatchError`; an unsealed journal -- the
    service crashed before :meth:`~repro.service.core.ServiceCore.finish`
    -- replays fine but reports ``recorded_digest=None``.
    """
    core: ServiceCore | None = None
    recorded_digest: str | None = None
    for record in read_journal(path):
        op = record["op"]
        if op == "header":
            if core is not None:
                raise JournalError("journal has more than one header record")
            core = ServiceCore(spec_from_dict(record["spec"]))
            core.start()
        elif core is None:
            raise JournalError("journal records precede the header")
        elif op == "advance":
            core.advance(float(record["t"]))
        elif op == "event":
            core.apply(LiveEvent.from_dict(record["event"]))
        elif op == "close":
            recorded_digest = record["digest"]
        else:
            raise JournalError(f"unknown journal op {op!r}")
    assert core is not None  # read_journal rejects headerless journals
    summary = core.finish()
    result = ReplayResult(
        summary=summary,
        digest=core.digest,
        recorded_digest=recorded_digest,
        events_applied=core.events_applied,
        final_t=core.now,
    )
    if verify and recorded_digest is not None and result.digest != recorded_digest:
        raise ReplayMismatchError(
            f"replayed digest {result.digest[:16]}... does not match the "
            f"journal's recorded {recorded_digest[:16]}...; the journal was "
            "edited or determinism broke"
        )
    return result
