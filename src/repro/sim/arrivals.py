"""Poisson user arrivals driven by the file-correlation workload model.

Users visit the indexing server at rate ``lambda_0``; each requests every
file independently with probability ``p`` and only enters the system when
the draw is non-empty.  Rather than thinning (simulating the empty visits),
the process arrives directly at the effective rate
``lambda_0 * (1 - (1-p)^K)`` and draws the class from the conditioned
binomial -- statistically identical and cheaper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.correlation import CorrelationModel

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.sim.system import SimulationSystem

__all__ = ["ArrivalProcess", "spawn_burst"]


def spawn_burst(
    system: "SimulationSystem",
    correlation: CorrelationModel,
    behavior_factory,
    n_users: int,
    **options,
) -> list[int]:
    """Spawn ``n_users`` at the current time (a flash crowd).

    Classes and file subsets are drawn from the correlation model exactly
    as for Poisson arrivals; returns the spawned user ids.
    """
    if n_users < 0:
        raise ValueError(f"n_users must be nonnegative, got {n_users}")
    ids = []
    for _ in range(n_users):
        files = correlation.sample_file_set(system.rng.files)
        ids.append(system.spawn_user(behavior_factory, files, **options))
    return ids


class ArrivalProcess:
    """Schedules user spawns on a :class:`SimulationSystem`.

    Parameters
    ----------
    system:
        Target system (supplies clock, RNG streams and ``spawn_user``).
    correlation:
        Workload model; its ``visit_rate`` is ``lambda_0``.
    behavior_factory:
        ``(system, user_id, files, **kw) -> UserBehavior`` factory from
        :func:`repro.sim.behaviors.make_behavior`.
    t_end:
        No arrivals are scheduled past this time.
    per_user_options:
        Optional hook ``(rng) -> dict`` producing per-user keyword
        overrides for the behaviour (used e.g. to mark a random fraction of
        users as cheaters).
    """

    def __init__(
        self,
        system: "SimulationSystem",
        correlation: CorrelationModel,
        behavior_factory,
        *,
        t_end: float,
        per_user_options: Callable[..., dict] | None = None,
    ):
        if correlation.p <= 0.0:
            raise ValueError("p must be positive: with p = 0 no user ever arrives")
        self.system = system
        self.correlation = correlation
        self.behavior_factory = behavior_factory
        self.t_end = t_end
        self.per_user_options = per_user_options
        self.n_spawned = 0
        self._rate = correlation.effective_user_rate()

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self.system.rng.arrivals.exponential(1.0 / self._rate))
        t = self.system.now + gap
        if t > self.t_end:
            return
        self.system.schedule_after(gap, self._arrive)

    def _arrive(self) -> None:
        files = self.correlation.sample_file_set(self.system.rng.files)
        options = {}
        if self.per_user_options is not None:
            options = self.per_user_options(self.system.rng.misc)
        self.system.spawn_user(self.behavior_factory, files, **options)
        self.n_spawned += 1
        self._schedule_next()
