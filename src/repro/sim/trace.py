"""Structured event tracing for simulation runs.

An optional, zero-cost-when-disabled record of everything that happens in
a run: arrivals, download starts/completions, seed allocations, departures
and Adapt adjustments.  Useful for debugging peer lifecycles, asserting
causal orderings in tests, and building custom analyses that the summary
statistics do not cover.

Enable by constructing the system with ``trace=EventTrace()``::

    trace = EventTrace()
    system = SimulationSystem(..., trace=trace)
    ...
    for ev in trace.for_user(42):
        print(ev.time, ev.kind, ev.file_id)
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

__all__ = ["EventKind", "TraceEvent", "EventTrace"]


class EventKind(enum.Enum):
    """The event vocabulary of a simulation run."""

    USER_ARRIVED = "user_arrived"
    DOWNLOAD_STARTED = "download_started"
    FILE_COMPLETED = "file_completed"
    SEED_ADDED = "seed_added"
    SEED_REMOVED = "seed_removed"
    USER_DEPARTED = "user_departed"
    RHO_CHANGED = "rho_changed"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event.

    ``file_id`` is ``None`` for user-level events; ``detail`` carries
    event-specific payload (seed bandwidth, new rho, ...).
    """

    time: float
    kind: EventKind
    user_id: int
    file_id: int | None = None
    detail: float | None = None

    def to_dict(self) -> dict:
        """JSON-safe dict form (inverse of :meth:`from_dict`)."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "user_id": self.user_id,
            "file_id": self.file_id,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceEvent":
        file_id = payload.get("file_id")
        detail = payload.get("detail")
        return cls(
            time=float(payload["time"]),
            kind=EventKind(payload["kind"]),
            user_id=int(payload["user_id"]),
            file_id=int(file_id) if file_id is not None else None,
            detail=float(detail) if detail is not None else None,
        )


class EventTrace:
    """Append-only event log with simple query helpers.

    Storage is a ``collections.deque`` so a bounded trace evicts its
    oldest event in O(1) per append -- the unbounded-list eviction it
    replaces cost O(n) per append once at capacity, quadratic over
    exactly the long-running service workloads that keep a trace pinned
    at capacity for millions of events.
    """

    def __init__(self, *, capacity: int | None = None):
        """``capacity`` bounds memory: oldest events are dropped beyond it."""
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def record(
        self,
        time: float,
        kind: EventKind,
        user_id: int,
        file_id: int | None = None,
        detail: float | None = None,
    ) -> None:
        events = self._events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1  # append below evicts the oldest event
        events.append(TraceEvent(time, kind, user_id, file_id, detail))

    # ----- queries ---------------------------------------------------------------

    def events(self) -> tuple[TraceEvent, ...]:
        """All retained events, in order."""
        return tuple(self._events)

    def of_kind(self, kind: EventKind) -> Iterator[TraceEvent]:
        return (e for e in self._events if e.kind is kind)

    def for_user(self, user_id: int) -> tuple[TraceEvent, ...]:
        """One user's full lifecycle, in order."""
        return tuple(e for e in self._events if e.user_id == user_id)

    def for_file(self, file_id: int) -> tuple[TraceEvent, ...]:
        return tuple(e for e in self._events if e.file_id == file_id)

    def counts(self) -> dict[EventKind, int]:
        """Event counts by kind."""
        out: dict[EventKind, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def to_rows(self) -> list[tuple]:
        """``(time, kind, user, file, detail)`` rows for CSV export."""
        return [
            (e.time, e.kind.value, e.user_id, e.file_id, e.detail)
            for e in self._events
        ]

    # ----- serialisation ----------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """All retained events as JSON-safe dicts, in order."""
        return [e.to_dict() for e in self._events]

    @classmethod
    def from_dicts(
        cls,
        payloads: Iterable[Mapping],
        *,
        capacity: int | None = None,
        dropped: int = 0,
    ) -> "EventTrace":
        """Rebuild a trace from :meth:`to_dicts` output (exact inverse)."""
        trace = cls(capacity=capacity)
        for payload in payloads:
            event = TraceEvent.from_dict(payload)
            trace.record(
                event.time, event.kind, event.user_id, event.file_id, event.detail
            )
        trace.dropped += dropped
        return trace

    def dump_ndjson(self, path: str | Path) -> Path:
        """Write the retained events to ``path``, one JSON object per line."""
        path = Path(path)
        with path.open("w") as fh:
            for e in self._events:
                fh.write(json.dumps(e.to_dict(), sort_keys=True))
                fh.write("\n")
        return path

    @classmethod
    def load_ndjson(
        cls, path: str | Path, *, capacity: int | None = None
    ) -> "EventTrace":
        """Read a trace written by :meth:`dump_ndjson` (round-trips exactly)."""
        with Path(path).open() as fh:
            return cls.from_dicts(
                (json.loads(line) for line in fh if line.strip()),
                capacity=capacity,
            )
