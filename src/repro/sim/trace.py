"""Structured event tracing for simulation runs.

An optional, zero-cost-when-disabled record of everything that happens in
a run: arrivals, download starts/completions, seed allocations, departures
and Adapt adjustments.  Useful for debugging peer lifecycles, asserting
causal orderings in tests, and building custom analyses that the summary
statistics do not cover.

Enable by constructing the system with ``trace=EventTrace()``::

    trace = EventTrace()
    system = SimulationSystem(..., trace=trace)
    ...
    for ev in trace.for_user(42):
        print(ev.time, ev.kind, ev.file_id)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["EventKind", "TraceEvent", "EventTrace"]


class EventKind(enum.Enum):
    """The event vocabulary of a simulation run."""

    USER_ARRIVED = "user_arrived"
    DOWNLOAD_STARTED = "download_started"
    FILE_COMPLETED = "file_completed"
    SEED_ADDED = "seed_added"
    SEED_REMOVED = "seed_removed"
    USER_DEPARTED = "user_departed"
    RHO_CHANGED = "rho_changed"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event.

    ``file_id`` is ``None`` for user-level events; ``detail`` carries
    event-specific payload (seed bandwidth, new rho, ...).
    """

    time: float
    kind: EventKind
    user_id: int
    file_id: int | None = None
    detail: float | None = None


class EventTrace:
    """Append-only event log with simple query helpers."""

    def __init__(self, *, capacity: int | None = None):
        """``capacity`` bounds memory: oldest events are dropped beyond it."""
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def record(
        self,
        time: float,
        kind: EventKind,
        user_id: int,
        file_id: int | None = None,
        detail: float | None = None,
    ) -> None:
        self._events.append(TraceEvent(time, kind, user_id, file_id, detail))
        if self.capacity is not None and len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow

    # ----- queries ---------------------------------------------------------------

    def events(self) -> tuple[TraceEvent, ...]:
        """All retained events, in order."""
        return tuple(self._events)

    def of_kind(self, kind: EventKind) -> Iterator[TraceEvent]:
        return (e for e in self._events if e.kind is kind)

    def for_user(self, user_id: int) -> tuple[TraceEvent, ...]:
        """One user's full lifecycle, in order."""
        return tuple(e for e in self._events if e.user_id == user_id)

    def for_file(self, file_id: int) -> tuple[TraceEvent, ...]:
        return tuple(e for e in self._events if e.file_id == file_id)

    def counts(self) -> dict[EventKind, int]:
        """Event counts by kind."""
        out: dict[EventKind, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def to_rows(self) -> list[tuple]:
        """``(time, kind, user, file, detail)`` rows for CSV export."""
        return [
            (e.time, e.kind.value, e.user_id, e.file_id, e.detail)
            for e in self._events
        ]
