"""Scalar reference implementations of the bandwidth-allocation kernels.

These are the original per-entry Python loops that
:meth:`repro.sim.swarm.Swarm.recompute_rates`,
:meth:`repro.sim.swarm.SwarmGroup.recompute_rates_all`,
:meth:`repro.sim.swarm.Swarm.advance` and the completion queries were built
from, kept verbatim as an *oracle*: the vectorised kernels that replaced
them must produce the same allocations on any swarm, and the equivalence
tests in ``tests/sim/test_kernels.py`` assert exactly that on randomised
populations.  They also serve as the baseline side of the kernel
benchmarks (``benchmarks/test_bench_kernels.py``).

All functions mutate the swarm's entries through the ordinary attribute
API, which writes through to the structure-of-arrays store -- so a scalar
pass and a vectorised pass run on the *same* swarm object and can be
compared directly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.entities import DownloadEntry, UserRecord
    from repro.sim.swarm import Swarm, SwarmGroup

__all__ = [
    "recompute_rates_scalar",
    "recompute_rates_all_scalar",
    "advance_scalar",
    "next_completion_time_scalar",
    "due_entries_scalar",
]


def recompute_rates_scalar(swarm: "Swarm", eta: float) -> None:
    """Per-entry loop equivalent of :meth:`Swarm.recompute_rates`.

    Bumps the swarm epoch exactly like the production kernel so the two
    are interchangeable in front of the event system.
    """
    swarm.epoch += 1
    if swarm.neighbor_aware:
        _recompute_rates_neighbor_aware_scalar(swarm, eta)
        return
    entries = swarm.downloaders.values()
    total_cap = sum(e.download_cap for e in entries)
    sv = swarm.virtual_capacity
    sr = swarm.real_capacity
    for entry in entries:
        share = entry.download_cap / total_cap if total_cap > 0 else 0.0
        rate = eta * entry.tft_upload + share * (sv + sr)
        if rate > entry.download_cap > 0:
            scale = entry.download_cap / rate
            entry.rate = entry.download_cap
            entry.rate_from_virtual = share * sv * scale
        else:
            entry.rate = rate
            entry.rate_from_virtual = share * sv


def _recompute_rates_neighbor_aware_scalar(swarm: "Swarm", eta: float) -> None:
    """O(n^2) connection-by-connection bounded-connectivity allocation."""
    entries = list(swarm.downloaders.values())
    for entry in entries:
        has_partner = any(
            swarm.connected(entry.user_id, other.user_id)
            for other in entries
            if other.user_id != entry.user_id
        )
        entry.rate = eta * entry.tft_upload if has_partner else 0.0
        entry.rate_from_virtual = 0.0
    for virtual, table in ((True, swarm.virtual_seeds), (False, swarm.real_seeds)):
        for seed_user, (bw, _) in table.items():
            if bw <= 0:
                continue
            receivers = [e for e in entries if swarm.connected(seed_user, e.user_id)]
            total_cap = sum(e.download_cap for e in receivers)
            if total_cap <= 0:
                continue
            for e in receivers:
                share = e.download_cap / total_cap * bw
                e.rate += share
                if virtual:
                    e.rate_from_virtual += share
    for entry in entries:
        if entry.rate > entry.download_cap > 0:
            scale = entry.download_cap / entry.rate
            entry.rate = entry.download_cap
            entry.rate_from_virtual *= scale


def recompute_rates_all_scalar(group: "SwarmGroup") -> None:
    """Per-entry loop equivalent of :meth:`SwarmGroup.recompute_rates_all`."""
    eta = group.eta
    entries = list(group.all_entries())
    total_cap = sum(e.download_cap for e in entries)
    pool_virtual = group.total_virtual_capacity()
    pool_real = group.total_real_capacity()
    for swarm in group.swarms.values():
        swarm.epoch += 1
    for entry in entries:
        share = entry.download_cap / total_cap if total_cap > 0 else 0.0
        rate = eta * entry.tft_upload + share * (pool_virtual + pool_real)
        if rate > entry.download_cap > 0:
            scale = entry.download_cap / rate
            entry.rate = entry.download_cap
            entry.rate_from_virtual = share * pool_virtual * scale
        else:
            entry.rate = rate
            entry.rate_from_virtual = share * pool_virtual


def advance_scalar(
    swarm: "Swarm", t: float, records: "Mapping[int, UserRecord] | None"
) -> None:
    """Per-entry loop equivalent of :meth:`Swarm.advance`."""
    dt = t - swarm.last_update
    if dt < -1e-9:
        raise ValueError(f"cannot advance swarm backwards ({swarm.last_update} -> {t})")
    if dt <= 0:
        swarm.last_update = t
        return
    for entry in swarm.downloaders.values():
        entry.remaining = max(0.0, entry.remaining - entry.rate * dt)
        if records is not None and entry.rate_from_virtual > 0:
            rec = records.get(entry.user_id)
            if rec is not None:
                rec.received_virtual += entry.rate_from_virtual * dt
    if records is not None and swarm.downloaders:
        for user_id, (bw, _) in swarm.virtual_seeds.items():
            rec = records.get(user_id)
            if rec is not None:
                rec.uploaded_virtual += bw * dt
    swarm.last_update = t


def next_completion_time_scalar(swarm: "Swarm") -> float:
    """Full-scan equivalent of :meth:`Swarm.next_completion_time`."""
    eta = math.inf
    for entry in swarm.downloaders.values():
        eta = min(eta, entry.eta_for_completion())
    return swarm.last_update + eta


def due_entries_scalar(swarm: "Swarm", slack: float) -> "list[DownloadEntry]":
    """Full-scan equivalent of :meth:`Swarm.due_entries`."""
    return [e for e in swarm.downloaders.values() if e.remaining <= slack]
