"""Per-scheme user state machines.

Each behaviour drives one user through its visit by reacting to two kinds
of stimuli: file completions (delivered by the system) and its own timers
(seed expiries).  The three machines map onto the paper's schemes:

* :class:`ConcurrentBehavior` -- MTCD and MFCD.  All ``i`` files download
  at once, each with ``1/i`` of the user's bandwidth; each finished file is
  seeded for an independent ``Exp(1/gamma)``.
* :class:`SequentialBehavior` -- MTSD.  Files download one at a time at
  full bandwidth, each followed by its own ``Exp(1/gamma)`` seeding phase
  (Eq. 4 adds ``T + 1/gamma`` per file).
* :class:`CollaborativeBehavior` -- CMFSD.  Sequential at full download
  bandwidth; once at least one file is complete, upload splits into
  ``rho*mu`` of tit-for-tat plus a ``(1-rho)*mu`` virtual seed; after the
  last file the user real-seeds for one ``Exp(1/gamma)``.  Supports Adapt
  (dynamic ``rho``) and cheaters (``rho`` pinned at 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.sim.entities import DownloadEntry, UserRecord
from repro.sim.swarm import SeedPolicy

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.sim.adapt_runtime import AdaptRuntime
    from repro.sim.system import SimulationSystem

__all__ = [
    "UserBehavior",
    "ConcurrentBehavior",
    "SequentialBehavior",
    "CollaborativeBehavior",
    "BatchedBehavior",
    "BehaviorKind",
    "make_behavior",
]


class UserBehavior(ABC):
    """Base class wiring a user record to the system mutation API.

    ``mu`` / ``download_cap`` override the system-wide bandwidths for this
    user (heterogeneous access links, the Sec.-2 general model); they
    default to the system values.
    """

    scheme_label = "?"

    def __init__(
        self,
        system: "SimulationSystem",
        user_id: int,
        files: tuple[int, ...],
        *,
        mu: float | None = None,
        download_cap: float | None = None,
    ):
        if not files:
            raise ValueError("a user must request at least one file")
        if len(set(files)) != len(files):
            raise ValueError(f"duplicate files in request: {files}")
        if mu is not None and mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        if download_cap is not None and download_cap <= 0:
            raise ValueError(f"download_cap must be positive, got {download_cap}")
        self.system = system
        self.user_id = user_id
        self.files = tuple(files)
        self.mu = mu if mu is not None else system.mu
        self.download_cap = (
            download_cap if download_cap is not None else system.download_cap
        )
        self.record = UserRecord(
            user_id=user_id,
            arrival_time=system.now,
            user_class=len(files),
            files=self.files,
            scheme=self.scheme_label,
        )
        #: live ``[handle, callback]`` pairs from :meth:`_later`, so the
        #: service's forced-departure hook can fire them early
        self._pending_timers: list[list] = []

    @property
    def user_class(self) -> int:
        return len(self.files)

    def _later(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a timer whose handler also flushes pending rate updates."""
        entry: list = []

        def wrapped() -> None:
            if entry in self._pending_timers:
                self._pending_timers.remove(entry)
            fn()
            self.system.flush()

        handle = self.system.schedule_after(delay, wrapped)
        entry.extend((handle, wrapped))
        self._pending_timers.append(entry)

    def expire_timers_now(self) -> int:
        """Fire every pending lifecycle timer immediately, in schedule order.

        The live-service hook behind ``departure`` events: a user lingering
        as a seed has its seed-expiry / departure timers pending, and firing
        them now cuts the linger short so the user leaves at the current
        time.  A user still mid-download has no pending timers and is left
        alone (the fluid model has no mid-download aborts either).  Returns
        the number of timers fired.
        """
        fired = 0
        while self._pending_timers:
            handle, wrapped = self._pending_timers.pop(0)
            self.system.sim.cancel(handle)
            wrapped()
            fired += 1
        return fired

    @abstractmethod
    def on_arrival(self) -> None:
        """Start the visit (called once, at the arrival time)."""

    @abstractmethod
    def on_file_complete(self, entry: DownloadEntry) -> None:
        """React to one of this user's downloads finishing."""

    def _mark_downloads_done_if_complete(self) -> None:
        if len(self.record.file_completions) == len(self.files):
            if self.record.downloads_done_time is None:
                self.record.downloads_done_time = self.system.now


class ConcurrentBehavior(UserBehavior):
    """MTCD / MFCD: all files at once, bandwidth split ``i`` ways.

    Parameters
    ----------
    depart_together:
        ``False`` (default, fluid-faithful): each finished file is seeded
        for its own ``Exp(1/gamma)`` and then dropped; the user departs when
        the last seed expires.  ``True`` (client-realistic MFCD): finished
        files are seeded until the user departs, one ``Exp(1/gamma)`` after
        its final download completes -- the "virtual peers depart as a
        whole" reading of Sec. 3.4.
    """

    scheme_label = "concurrent"

    def __init__(
        self,
        system: "SimulationSystem",
        user_id: int,
        files: tuple[int, ...],
        *,
        depart_together: bool = False,
        mu: float | None = None,
        download_cap: float | None = None,
    ):
        super().__init__(system, user_id, files, mu=mu, download_cap=download_cap)
        self.depart_together = depart_together
        self._active_seeds: set[int] = set()
        self._pending_files: set[int] = set(files)

    def on_arrival(self) -> None:
        i = self.user_class
        for f in self.files:
            self.system.start_download(
                self.user_id,
                f,
                user_class=i,
                stage=1,
                tft_upload=self.mu / i,
                download_cap=self.download_cap / i,
            )

    def on_file_complete(self, entry: DownloadEntry) -> None:
        f = entry.file_id
        self._pending_files.discard(f)
        self._mark_downloads_done_if_complete()
        bw = self.mu / self.user_class
        self.system.add_seed(self.user_id, f, bw, self.user_class, virtual=False)
        self._active_seeds.add(f)
        if self.depart_together:
            if not self._pending_files:
                self._later(self.system.seed_lifetime(), self._depart_all)
        else:
            self._later(self.system.seed_lifetime(), lambda: self._expire_seed(f))

    def _expire_seed(self, f: int) -> None:
        self.system.remove_seed(self.user_id, f, virtual=False)
        self._active_seeds.discard(f)
        if not self._pending_files and not self._active_seeds:
            self.system.user_departed(self.user_id)

    def _depart_all(self) -> None:
        for f in sorted(self._active_seeds):
            self.system.remove_seed(self.user_id, f, virtual=False)
        self._active_seeds.clear()
        self.system.user_departed(self.user_id)


class SequentialBehavior(UserBehavior):
    """MTSD: one torrent at a time, full bandwidth, seed between files."""

    scheme_label = "sequential"

    def __init__(
        self,
        system: "SimulationSystem",
        user_id: int,
        files: tuple[int, ...],
        *,
        mu: float | None = None,
        download_cap: float | None = None,
    ):
        super().__init__(system, user_id, files, mu=mu, download_cap=download_cap)
        order = list(files)
        system.rng.order.shuffle(order)
        self.order = tuple(order)
        self.idx = 0

    def on_arrival(self) -> None:
        self._start_current()

    def _start_current(self) -> None:
        self.system.start_download(
            self.user_id,
            self.order[self.idx],
            user_class=self.user_class,
            stage=self.idx + 1,
            tft_upload=self.mu,
            download_cap=self.download_cap,
        )

    def on_file_complete(self, entry: DownloadEntry) -> None:
        f = entry.file_id
        if self.idx == len(self.order) - 1:
            self._mark_downloads_done_if_complete()
        self.system.add_seed(self.user_id, f, self.mu, self.user_class, virtual=False)
        self._later(self.system.seed_lifetime(), lambda: self._seed_expired(f))

    def _seed_expired(self, f: int) -> None:
        self.system.remove_seed(self.user_id, f, virtual=False)
        self.idx += 1
        if self.idx < len(self.order):
            self._start_current()
        else:
            self.system.user_departed(self.user_id)


class BatchedBehavior(UserBehavior):
    """MTBD: sequential batches of at most ``m`` concurrent downloads.

    The simulator counterpart of
    :class:`repro.core.batched.BatchedDownloadModel`: files are shuffled,
    taken ``m`` at a time; within a batch the user splits its bandwidth
    ``b`` ways (``b`` = batch size); after the batch completes, each of its
    files is seeded for an independent ``Exp(1/gamma)`` and the next batch
    starts once every seed has expired.  ``m = 1`` reproduces
    :class:`SequentialBehavior`; ``m >= len(files)`` reproduces
    :class:`ConcurrentBehavior` with per-entry seeding.
    """

    scheme_label = "batched"

    def __init__(
        self,
        system: "SimulationSystem",
        user_id: int,
        files: tuple[int, ...],
        *,
        max_concurrency: int = 3,
        mu: float | None = None,
        download_cap: float | None = None,
    ):
        super().__init__(system, user_id, files, mu=mu, download_cap=download_cap)
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        order = list(files)
        system.rng.order.shuffle(order)
        m = max_concurrency
        self.batches = [tuple(order[k : k + m]) for k in range(0, len(order), m)]
        self.batch_idx = 0
        self._pending_downloads: set[int] = set()
        self._pending_seeds: set[int] = set()

    def on_arrival(self) -> None:
        self._start_batch()

    def _start_batch(self) -> None:
        batch = self.batches[self.batch_idx]
        b = len(batch)
        self._pending_downloads = set(batch)
        for f in batch:
            self.system.start_download(
                self.user_id,
                f,
                user_class=self.user_class,
                stage=self.batch_idx + 1,
                tft_upload=self.mu / b,
                download_cap=self.download_cap / b,
            )

    def on_file_complete(self, entry: DownloadEntry) -> None:
        f = entry.file_id
        self._pending_downloads.discard(f)
        self._mark_downloads_done_if_complete()
        b = len(self.batches[self.batch_idx])
        self.system.add_seed(self.user_id, f, self.mu / b, self.user_class, virtual=False)
        self._pending_seeds.add(f)
        self._later(self.system.seed_lifetime(), lambda: self._seed_expired(f))

    def _seed_expired(self, f: int) -> None:
        self.system.remove_seed(self.user_id, f, virtual=False)
        self._pending_seeds.discard(f)
        if self._pending_downloads or self._pending_seeds:
            return
        self.batch_idx += 1
        if self.batch_idx < len(self.batches):
            self._start_batch()
        else:
            self.system.user_departed(self.user_id)


class CollaborativeBehavior(UserBehavior):
    """CMFSD: sequential download + partial virtual seeding governed by rho.

    Parameters
    ----------
    rho:
        Initial bandwidth-allocation ratio in ``[0, 1]``.
    is_cheater:
        Pins ``rho`` at 1 forever (never virtual-seeds).
    adapt:
        Optional :class:`~repro.sim.adapt_runtime.AdaptRuntime`; when given,
        the runtime attaches a periodic controller to this user.
    """

    scheme_label = "cmfsd"

    def __init__(
        self,
        system: "SimulationSystem",
        user_id: int,
        files: tuple[int, ...],
        *,
        rho: float = 0.0,
        is_cheater: bool = False,
        adapt: "AdaptRuntime | None" = None,
        mu: float | None = None,
        download_cap: float | None = None,
    ):
        super().__init__(system, user_id, files, mu=mu, download_cap=download_cap)
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        order = list(files)
        system.rng.order.shuffle(order)
        self.order = tuple(order)
        self.idx = 0
        self.rho = 1.0 if is_cheater else rho
        self.is_cheater = is_cheater
        self.record.is_cheater = is_cheater
        self.record.rho_trace.append((system.now, self.rho))
        self.virtual_seed_file: int | None = None
        self.adapt = adapt
        self.done = False

    # -- helpers ------------------------------------------------------------------

    @property
    def current_file(self) -> int:
        return self.order[self.idx]

    def _tft_bandwidth(self) -> float:
        """P(i, j) * mu: full upload on the first file, ``rho*mu`` after."""
        if self.idx == 0:
            return self.mu
        return self.rho * self.mu

    def _virtual_bandwidth(self) -> float:
        if self.idx == 0:
            return 0.0
        return (1.0 - self.rho) * self.mu

    def _choose_seed_target(self) -> int:
        """Pick which completed file's swarm receives seed bandwidth.

        Under ``GLOBAL_POOL`` the attachment is cosmetic (capacity is pooled
        group-wide); under ``SUBTORRENT`` we place where demand is largest.
        """
        completed = self.order[: self.idx]
        group = self.system.group_of_file(completed[0])
        if group.policy is SeedPolicy.GLOBAL_POOL:
            return completed[-1]
        return max(completed, key=lambda f: group.swarms[f].n_downloaders)

    # -- lifecycle ----------------------------------------------------------------

    def on_arrival(self) -> None:
        self._start_current()
        if self.adapt is not None and not self.is_cheater and self.user_class > 1:
            self.adapt.attach(self)

    def _start_current(self) -> None:
        self.system.start_download(
            self.user_id,
            self.current_file,
            user_class=self.user_class,
            stage=self.idx + 1,
            tft_upload=self._tft_bandwidth(),
            download_cap=self.download_cap,
        )

    def on_file_complete(self, entry: DownloadEntry) -> None:
        self.idx += 1
        if self.idx < len(self.order):
            self._replace_virtual_seed()
            self._start_current()
        else:
            self._mark_downloads_done_if_complete()
            self._drop_virtual_seed()
            self.done = True
            target = self._choose_seed_target()
            self.system.add_seed(
                self.user_id, target, self.mu, self.user_class, virtual=False
            )
            self._later(
                self.system.seed_lifetime(), lambda: self._real_seed_expired(target)
            )

    def _replace_virtual_seed(self) -> None:
        self._drop_virtual_seed()
        target = self._choose_seed_target()
        self.system.add_seed(
            self.user_id,
            target,
            self._virtual_bandwidth(),
            self.user_class,
            virtual=True,
        )
        self.virtual_seed_file = target

    def _drop_virtual_seed(self) -> None:
        if self.virtual_seed_file is not None:
            self.system.remove_seed(self.user_id, self.virtual_seed_file, virtual=True)
            self.virtual_seed_file = None

    def _real_seed_expired(self, target: int) -> None:
        self.system.remove_seed(self.user_id, target, virtual=False)
        self.system.user_departed(self.user_id)

    # -- Adapt hook ---------------------------------------------------------------

    def set_rho(self, rho: float) -> None:
        """Apply a new allocation ratio to the live download/virtual seed."""
        if self.is_cheater:
            return
        rho = min(1.0, max(0.0, rho))
        if rho == self.rho:
            return
        self.rho = rho
        self.record.rho_trace.append((self.system.now, rho))
        if self.system.trace is not None:
            from repro.sim.trace import EventKind

            self.system.trace.record(
                self.system.now, EventKind.RHO_CHANGED, self.user_id, detail=rho
            )
        if self.done or self.idx >= len(self.order):
            return
        if self.idx >= 1:
            self.system.set_tft_upload(
                self.user_id, self.current_file, self._tft_bandwidth()
            )
            if self.virtual_seed_file is not None:
                self.system.set_seed_bandwidth(
                    self.user_id,
                    self.virtual_seed_file,
                    self._virtual_bandwidth(),
                    virtual=True,
                )


class BehaviorKind:
    """Factory helpers bundling a behaviour class with fixed options."""

    CONCURRENT = "concurrent"
    SEQUENTIAL = "sequential"
    COLLABORATIVE = "collaborative"
    BATCHED = "batched"


def make_behavior(kind: str, **options):
    """Return a ``(system, user_id, files) -> UserBehavior`` factory.

    ``options`` are bound into the behaviour constructor (e.g. ``rho=0.1``
    for collaborative, ``depart_together=True`` for concurrent).
    """
    classes = {
        BehaviorKind.CONCURRENT: ConcurrentBehavior,
        BehaviorKind.SEQUENTIAL: SequentialBehavior,
        BehaviorKind.COLLABORATIVE: CollaborativeBehavior,
        BehaviorKind.BATCHED: BatchedBehavior,
    }
    try:
        cls = classes[kind]
    except KeyError:
        raise ValueError(
            f"unknown behavior kind {kind!r}; expected one of {sorted(classes)}"
        ) from None

    def factory(system, user_id, files, **overrides):
        merged = {**options, **overrides}
        return cls(system, user_id, files, **merged)

    return factory
