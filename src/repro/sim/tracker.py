"""The tracker of the paper's server--torrent architecture (Fig. 1).

Real BitTorrent peers do not see the whole swarm: they announce to the
tracker and receive a bounded random sample of other peers (classically
``numwant = 50``), and can only exchange data with peers they are
connected to.  The fluid models assume *full mixing* -- everyone trades
with everyone.  This module provides the tracker bookkeeping (announce
events, per-swarm scrape statistics) and the random peer-list sampling
that lets the flow-level simulator run with bounded neighbour sets, so the
quality of the full-mixing assumption becomes measurable (the ``mixing``
experiment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["AnnounceEvent", "ScrapeStats", "Tracker"]


class AnnounceEvent(enum.Enum):
    """The announce event types of the BitTorrent tracker protocol."""

    STARTED = "started"
    COMPLETED = "completed"
    STOPPED = "stopped"


@dataclass(frozen=True)
class ScrapeStats:
    """Per-swarm counters exposed by a tracker scrape.

    ``leechers``/``seeders`` count current members; ``completed`` counts
    downloads finished over the torrent's lifetime (the tracker's
    "snatches" figure).
    """

    leechers: int
    seeders: int
    completed: int

    @property
    def total_peers(self) -> int:
        return self.leechers + self.seeders


class Tracker:
    """Per-file peer registries with announce/scrape and peer sampling.

    Parameters
    ----------
    rng:
        Random generator for peer-list sampling.
    numwant:
        Maximum number of peers returned per announce (the protocol's
        ``numwant``; 50 in mainline BitTorrent).
    """

    def __init__(self, rng: np.random.Generator, *, numwant: int = 50):
        if numwant < 1:
            raise ValueError(f"numwant must be >= 1, got {numwant}")
        self.rng = rng
        self.numwant = numwant
        #: file_id -> {user_id: is_seeder}
        self._members: dict[int, dict[int, bool]] = {}
        self._completed: dict[int, int] = {}
        self.announces = 0

    def _table(self, file_id: int) -> dict[int, bool]:
        return self._members.setdefault(file_id, {})

    def announce(
        self,
        user_id: int,
        file_id: int,
        event: AnnounceEvent,
        *,
        is_seeder: bool = False,
        want_peers: bool = True,
    ) -> list[int]:
        """Process one announce; returns a random peer sample (others only).

        ``STARTED`` registers the peer (as leecher or seeder), ``COMPLETED``
        flips it to seeder and bumps the snatch counter, ``STOPPED``
        removes it.  The returned sample has at most ``numwant`` user ids.

        ``want_peers=False`` (the protocol's ``numwant=0``) makes the
        announce pure O(1) bookkeeping and returns an empty list -- large
        swarms announce completions/departures without paying the O(swarm)
        peer-list scan.
        """
        table = self._table(file_id)
        self.announces += 1
        if event is AnnounceEvent.STARTED:
            table[user_id] = is_seeder
        elif event is AnnounceEvent.COMPLETED:
            if user_id not in table:
                raise KeyError(
                    f"user {user_id} completed file {file_id} without starting"
                )
            table[user_id] = True
            self._completed[file_id] = self._completed.get(file_id, 0) + 1
        elif event is AnnounceEvent.STOPPED:
            table.pop(user_id, None)
        if not want_peers:
            return []
        others = [uid for uid in table if uid != user_id]
        if len(others) <= self.numwant:
            return others
        picked = self.rng.choice(len(others), size=self.numwant, replace=False)
        return [others[k] for k in picked]

    def scrape(self, file_id: int) -> ScrapeStats:
        """Current swarm counters for one file."""
        table = self._table(file_id)
        seeders = sum(1 for is_seed in table.values() if is_seed)
        return ScrapeStats(
            leechers=len(table) - seeders,
            seeders=seeders,
            completed=self._completed.get(file_id, 0),
        )

    def members(self, file_id: int) -> set[int]:
        """User ids currently announced on a file."""
        return set(self._table(file_id))
