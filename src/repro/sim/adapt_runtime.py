"""Per-peer Adapt controllers running inside the simulator.

The fluid-level Adapt study (:func:`repro.core.adapt.adapt_fixed_point`)
tunes one ``rho`` per class; here every peer runs its own
:class:`~repro.core.adapt.AdaptController` on its *measured* virtual-seed
give/take imbalance, exactly as Sec. 4.3 prescribes: periodically compare
the bandwidth uploaded through the peer's virtual seed against the
bandwidth received from other peers' virtual seeds, and nudge ``rho``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.adapt import AdaptController, AdaptPolicy

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.sim.behaviors import CollaborativeBehavior
    from repro.sim.system import SimulationSystem

__all__ = ["AdaptRuntime"]


class AdaptRuntime:
    """Attaches periodic Adapt ticks to collaborative users.

    Parameters
    ----------
    system:
        The owning simulation system.
    policy:
        Thresholds/steps of the Adapt rule; obedient users start at
        ``policy.initial_rho``.
    period:
        Time between controller observations for each user.
    """

    def __init__(self, system: "SimulationSystem", policy: AdaptPolicy, period: float):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.system = system
        self.policy = policy
        self.period = period
        self.n_adjustments = 0

    def attach(self, behavior: "CollaborativeBehavior") -> None:
        """Start a controller loop for one user (called from on_arrival)."""
        controller = AdaptController(self.policy)
        behavior.set_rho(self.policy.initial_rho)
        record = behavior.record
        state = {"up": record.uploaded_virtual, "down": record.received_virtual}

        def tick() -> None:
            if behavior.done or record.is_departed:
                return
            # give/take integrals are accumulated lazily; settle this
            # user's pending accounting before reading them
            self.system.sync_user_accounting(record.user_id)
            give = record.uploaded_virtual - state["up"]
            take = record.received_virtual - state["down"]
            state["up"] = record.uploaded_virtual
            state["down"] = record.received_virtual
            delta = (give - take) / self.period
            old_rho = behavior.rho
            new_rho = controller.observe(delta)
            if new_rho != old_rho:
                behavior.set_rho(new_rho)
                self.n_adjustments += 1
                self.system.flush()
            self.system.schedule_after(self.period, tick)

        self.system.schedule_after(self.period, tick)
