"""Deprecated flat scenario (de)serialisation -- use :mod:`repro.scenario`.

This module predates the declarative scenario DSL.  Its flat JSON schema
(`scheme` + `params`/`workload` objects + scalar ``ScenarioConfig`` fields
at the top level) is still accepted, but the validation and coercion now
live in :mod:`repro.scenario.compat` on the same machinery as the DSL, so
error messages are path-qualified (``scenario.params: ...``) and YAML
documents work wherever JSON did.

New code should write :class:`repro.scenario.ScenarioSpec` documents and
call :func:`repro.scenario.load_spec` / :func:`repro.scenario.compile_sim`
instead; each shim below warns once per process when first used.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Any, Mapping

from repro.sim.metrics import SimulationSummary
from repro.sim.scenarios import ScenarioConfig

__all__ = ["scenario_from_dict", "load_scenario", "summary_to_dict"]

_warned: set[str] = set()


def _deprecated(name: str, replacement: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.sim.config_io.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def scenario_from_dict(doc: Mapping[str, Any]) -> ScenarioConfig:
    """Deprecated: use :func:`repro.scenario.sim_config_from_dict`."""
    from repro.scenario.compat import sim_config_from_dict

    _deprecated("scenario_from_dict", "repro.scenario.sim_config_from_dict")
    return sim_config_from_dict(doc)


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Deprecated: use :func:`repro.scenario.load_sim_config`."""
    from repro.scenario.compat import load_sim_config

    _deprecated("load_scenario", "repro.scenario.load_sim_config")
    return load_sim_config(path)


def summary_to_dict(summary: SimulationSummary) -> dict[str, Any]:
    """Deprecated: use :func:`repro.scenario.summary_to_dict`."""
    from repro.scenario.compat import summary_to_dict as _impl

    _deprecated("summary_to_dict", "repro.scenario.summary_to_dict")
    return _impl(summary)
