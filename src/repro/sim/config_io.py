"""JSON (de)serialisation of simulation scenarios.

Lets the simulator be driven without writing Python: describe a scenario
as a JSON document, run it with ``python -m repro simulate scenario.json``
and get the summary as a table (and optionally JSON on stdout for
scripting).  The schema mirrors :class:`~repro.sim.scenarios.ScenarioConfig`
field-for-field, with nested ``params`` and ``workload`` objects:

.. code-block:: json

    {
      "scheme": "CMFSD",
      "params": {"mu": 0.02, "eta": 0.5, "gamma": 0.05, "num_files": 10},
      "workload": {"p": 0.9, "visit_rate": 0.5},
      "t_end": 2500, "warmup": 700, "rho": 0.1, "seed": 42,
      "adapt": {"phi_increase": 0.005, "phi_decrease": -0.005,
                "step_increase": 0.1, "step_decrease": 0.1,
                "patience": 2, "initial_rho": 0.0},
      "cheater_fraction": 0.25
    }

Unknown keys are rejected loudly (typos should not silently run a
different experiment).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.adapt import AdaptPolicy
from repro.core.correlation import CorrelationModel
from repro.core.parameters import FluidParameters
from repro.core.schemes import Scheme
from repro.sim.metrics import SimulationSummary
from repro.sim.scenarios import ScenarioConfig
from repro.sim.swarm import SeedPolicy

__all__ = ["scenario_from_dict", "load_scenario", "summary_to_dict"]

_PARAM_KEYS = {"mu", "eta", "gamma", "num_files", "download_bandwidth"}
_WORKLOAD_KEYS = {"p", "visit_rate"}
_ADAPT_KEYS = {
    "phi_increase",
    "phi_decrease",
    "step_increase",
    "step_decrease",
    "patience",
    "initial_rho",
}
_SCENARIO_KEYS = {
    "scheme",
    "params",
    "workload",
    "t_end",
    "warmup",
    "rho",
    "seed",
    "sample_interval",
    "seed_policy",
    "depart_together",
    "adapt",
    "adapt_period",
    "cheater_fraction",
    "initial_burst",
    "arrivals_enabled",
    "seed_lifetime_distribution",
    "neighbor_limit",
    "incremental_rates",
}


def _check_keys(obj: Mapping[str, Any], allowed: set[str], where: str) -> None:
    unknown = set(obj) - allowed
    if unknown:
        raise ValueError(
            f"unknown {where} keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def scenario_from_dict(doc: Mapping[str, Any]) -> ScenarioConfig:
    """Build a :class:`ScenarioConfig` from a plain dict (parsed JSON)."""
    _check_keys(doc, _SCENARIO_KEYS, "scenario")
    if "scheme" not in doc:
        raise ValueError("scenario needs a 'scheme' (MTCD/MTSD/MFCD/CMFSD)")
    try:
        scheme = Scheme[str(doc["scheme"]).upper()]
    except KeyError:
        raise ValueError(
            f"unknown scheme {doc['scheme']!r}; expected one of "
            f"{[s.value for s in Scheme]}"
        ) from None

    params_doc = dict(doc.get("params", {}))
    _check_keys(params_doc, _PARAM_KEYS, "params")
    params = FluidParameters(**params_doc)

    workload_doc = dict(doc.get("workload", {}))
    _check_keys(workload_doc, _WORKLOAD_KEYS, "workload")
    if "p" not in workload_doc:
        raise ValueError("workload needs a correlation 'p'")
    correlation = CorrelationModel(num_files=params.num_files, **workload_doc)

    kwargs: dict[str, Any] = {
        k: doc[k]
        for k in _SCENARIO_KEYS - {"scheme", "params", "workload", "adapt", "seed_policy"}
        if k in doc
    }
    if "seed_policy" in doc and doc["seed_policy"] is not None:
        try:
            kwargs["seed_policy"] = SeedPolicy(doc["seed_policy"])
        except ValueError:
            raise ValueError(
                f"unknown seed_policy {doc['seed_policy']!r}; expected "
                f"{[p.value for p in SeedPolicy]}"
            ) from None
    if "adapt" in doc and doc["adapt"] is not None:
        adapt_doc = dict(doc["adapt"])
        _check_keys(adapt_doc, _ADAPT_KEYS, "adapt")
        kwargs["adapt"] = AdaptPolicy(**adapt_doc)
    return ScenarioConfig(
        scheme=scheme, params=params, correlation=correlation, **kwargs
    )


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Read a scenario JSON file."""
    with Path(path).open() as fh:
        return scenario_from_dict(json.load(fh))


def summary_to_dict(summary: SimulationSummary) -> dict[str, Any]:
    """Serialise a run summary for JSON output (NaNs become None)."""

    def clean(x: float) -> float | None:
        return None if x != x else float(x)

    return {
        "n_users_completed": summary.n_users_completed,
        "avg_online_time_per_file": clean(summary.avg_online_time_per_file),
        "avg_download_time_per_file": clean(summary.avg_download_time_per_file),
        "online_time_per_file_by_class": [
            clean(v) for v in summary.online_time_per_file_by_class
        ],
        "download_time_per_file_by_class": [
            clean(v) for v in summary.download_time_per_file_by_class
        ],
        "entry_download_time_by_class": [
            clean(v) for v in summary.entry_download_time_by_class
        ],
        "class_counts": [int(v) for v in summary.class_counts],
    }
