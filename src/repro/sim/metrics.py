"""Measurement collection and end-of-run summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import ClassMetrics, SystemMetrics, aggregate_metrics
from repro.sim.entities import EntrySpan, UserRecord

__all__ = ["PopulationSample", "MetricsCollector", "SimulationSummary"]


@dataclass(frozen=True)
class PopulationSample:
    """Snapshot of one swarm's population at one sampling instant.

    ``downloaders[k]`` / ``seeds[k]`` count peers of user class ``k + 1``
    (``seeds`` counts *real* seeds; virtual seeds are downloaders in the
    fluid models and are counted there).
    """

    time: float
    group_id: int
    file_id: int
    downloaders: np.ndarray
    seeds: np.ndarray
    #: optional (class, stage) matrix -- the Eq.-(5) x^{i,j} counterpart
    stage_downloaders: np.ndarray | None = None


@dataclass
class MetricsCollector:
    """Accumulates user records, per-entry spans and population samples."""

    num_classes: int
    records: dict[int, UserRecord] = field(default_factory=dict)
    entry_spans: list[EntrySpan] = field(default_factory=list)
    samples: list[PopulationSample] = field(default_factory=list)

    def new_record(self, record: UserRecord) -> None:
        if record.user_id in self.records:
            raise ValueError(f"duplicate user id {record.user_id}")
        self.records[record.user_id] = record

    def record_span(self, span: EntrySpan) -> None:
        self.entry_spans.append(span)

    def record_sample(self, sample: PopulationSample) -> None:
        self.samples.append(sample)

    # ----- reductions -----------------------------------------------------------

    def completed_users(self, warmup: float = 0.0, horizon: float = math.inf):
        """Users that arrived in ``[warmup, horizon)`` and fully departed.

        Restricting to departed users avoids censoring bias at the end of
        the run (still-active users have longer-than-average times).
        """
        return [
            r
            for r in self.records.values()
            if r.is_departed and warmup <= r.arrival_time < horizon
        ]

    def summarize(
        self,
        *,
        warmup: float = 0.0,
        horizon: float = math.inf,
    ) -> "SimulationSummary":
        """Reduce to per-class and aggregate steady-state estimates."""
        users = self.completed_users(warmup, horizon)
        K = self.num_classes

        dl_by_class: list[list[float]] = [[] for _ in range(K)]
        online_by_class: list[list[float]] = [[] for _ in range(K)]
        for r in users:
            dl_by_class[r.user_class - 1].append(r.download_time_per_file)
            online_by_class[r.user_class - 1].append(r.online_time_per_file)

        entry_dl_by_class: list[list[float]] = [[] for _ in range(K)]
        for span in self.entry_spans:
            if warmup <= span.started_at < horizon:
                entry_dl_by_class[span.user_class - 1].append(span.download_time)

        def _mean(xs: list[float]) -> float:
            return float(np.mean(xs)) if xs else math.nan

        per_class_dl = np.array([_mean(xs) for xs in dl_by_class])
        per_class_online = np.array([_mean(xs) for xs in online_by_class])
        per_class_entry_dl = np.array([_mean(xs) for xs in entry_dl_by_class])
        class_counts = np.array([len(xs) for xs in online_by_class])

        total_files = sum(r.user_class for r in users)
        if total_files > 0:
            avg_online = (
                sum(r.total_online_time for r in users) / total_files
            )
            avg_dl = sum(r.total_download_time for r in users) / total_files
        else:
            avg_online = math.nan
            avg_dl = math.nan

        # Time-averaged swarm populations over the post-warmup window.
        pop_dl: dict[tuple[int, int], np.ndarray] = {}
        pop_seed: dict[tuple[int, int], np.ndarray] = {}
        pop_stage: dict[tuple[int, int], np.ndarray] = {}
        counts: dict[tuple[int, int], int] = {}
        for s in self.samples:
            if not warmup <= s.time < horizon:
                continue
            key = (s.group_id, s.file_id)
            if key not in pop_dl:
                pop_dl[key] = np.zeros(K)
                pop_seed[key] = np.zeros(K)
                counts[key] = 0
            pop_dl[key] += s.downloaders
            pop_seed[key] += s.seeds
            counts[key] += 1
            if s.stage_downloaders is not None:
                pop_stage.setdefault(key, np.zeros((K, K)))
                pop_stage[key] += s.stage_downloaders
        mean_downloaders = {k: pop_dl[k] / counts[k] for k in counts if counts[k] > 0}
        mean_seeds = {k: pop_seed[k] / counts[k] for k in counts if counts[k] > 0}
        mean_stage = {
            k: pop_stage[k] / counts[k] for k in pop_stage if counts.get(k, 0) > 0
        }

        return SimulationSummary(
            n_users_completed=len(users),
            class_counts=class_counts,
            download_time_per_file_by_class=per_class_dl,
            online_time_per_file_by_class=per_class_online,
            entry_download_time_by_class=per_class_entry_dl,
            avg_online_time_per_file=float(avg_online),
            avg_download_time_per_file=float(avg_dl),
            mean_downloaders=mean_downloaders,
            mean_seeds=mean_seeds,
            mean_stage_downloaders=mean_stage,
        )


@dataclass(frozen=True)
class SimulationSummary:
    """Steady-state estimates from one simulation run.

    Attributes
    ----------
    n_users_completed:
        Number of departed users contributing to the estimates.
    class_counts:
        Per-class user counts (index ``i - 1``).
    download_time_per_file_by_class / online_time_per_file_by_class:
        User-level per-file times, per class (NaN for empty classes).
    entry_download_time_by_class:
        Mean single-file transfer time per class (per-entry accounting --
        the fluid ``x/lambda`` quantity; excludes MTSD's interleaved seed
        phases).
    avg_online_time_per_file / avg_download_time_per_file:
        The paper's aggregate metrics over all completed users.
    mean_downloaders / mean_seeds:
        ``(group_id, file_id) -> per-class time-averaged population``.
    mean_stage_downloaders:
        ``(group_id, file_id) -> (class, stage) matrix`` when stage-level
        sampling was enabled (the Eq.-(5) ``x^{i,j}`` observable).

    Notes
    -----
    The summary speaks the same metric vocabulary as the fluid models'
    :class:`~repro.core.metrics.SystemMetrics`: the aggregate fields
    ``avg_online_time_per_file`` / ``avg_download_time_per_file`` carry the
    same names and definitions, and :meth:`class_metrics` /
    :meth:`to_system_metrics` re-express the per-class arrays as
    :class:`~repro.core.metrics.ClassMetrics`, so experiments can tabulate
    simulated and fluid results through one code path (see the
    "metric vocabulary" section of ``docs/API.md`` for the full mapping).
    """

    n_users_completed: int
    class_counts: np.ndarray
    download_time_per_file_by_class: np.ndarray
    online_time_per_file_by_class: np.ndarray
    entry_download_time_by_class: np.ndarray
    avg_online_time_per_file: float
    avg_download_time_per_file: float
    mean_downloaders: dict[tuple[int, int], np.ndarray]
    mean_seeds: dict[tuple[int, int], np.ndarray]
    mean_stage_downloaders: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict
    )

    def swarm_population(self, group_id: int, file_id: int) -> tuple[np.ndarray, np.ndarray]:
        """``(mean downloaders by class, mean real seeds by class)``."""
        key = (group_id, file_id)
        return self.mean_downloaders[key], self.mean_seeds[key]

    # ----- core-metrics vocabulary (parity with the fluid models) -------------

    @property
    def classes(self) -> tuple[int, ...]:
        """Class indices ``1..K`` (mirrors ``SystemMetrics.classes``)."""
        return tuple(range(1, len(self.class_counts) + 1))

    def class_metrics(self, i: int) -> ClassMetrics:
        """Class ``i`` estimates as a :class:`~repro.core.metrics.ClassMetrics`.

        The ``arrival_rate`` slot carries the *completed-user count* of the
        class -- over a fixed measurement window counts are proportional to
        rates, so rate-weighted aggregation over these objects reproduces
        the summary's own user-level aggregates.  Empty classes have NaN
        times, exactly like zero-rate classes in the fluid models.
        """
        if not 1 <= i <= len(self.class_counts):
            raise ValueError(f"class index must be in 1..{len(self.class_counts)}")
        per_file_dl = float(self.download_time_per_file_by_class[i - 1])
        per_file_online = float(self.online_time_per_file_by_class[i - 1])
        return ClassMetrics(
            class_index=i,
            arrival_rate=float(self.class_counts[i - 1]),
            total_download_time=i * per_file_dl,
            total_online_time=i * per_file_online,
        )

    def to_system_metrics(self, scheme: str = "simulation") -> SystemMetrics:
        """Re-express the summary as a :class:`~repro.core.metrics.SystemMetrics`.

        The aggregates equal ``avg_online_time_per_file`` /
        ``avg_download_time_per_file`` up to floating-point rounding (count
        weighting is algebraically identical to the user-level sums), so
        simulated and fluid results can flow through the same tables.
        """
        per_class = [self.class_metrics(i) for i in self.classes]
        return aggregate_metrics(scheme, per_class)
