"""Discrete-event core: a monotone clock over a binary-heap event queue.

Events are ``(time, priority, sequence, callback)``; ties break first on an
explicit integer priority (lower first), then on insertion order, which
makes runs fully deterministic.  Callbacks take no arguments -- bind state
with closures or ``functools.partial``.

Cancellation uses the standard lazy scheme: :meth:`EventQueue.cancel` marks
the handle, and the pop loop discards marked entries.  This keeps the queue
a plain ``heapq`` without the cost of re-heapifying on every cancel.
Tombstones below the heap top are reclaimed by an occasional compaction:
when more than half the heap (and at least :data:`COMPACT_MIN_TOMBSTONES`)
is cancelled entries, the heap is rebuilt without them -- amortised O(1)
per cancel, bounding both memory and the ``log`` factor of every push in
workloads that cancel and reschedule constantly (the simulator's
completion events do exactly that on every flush).
"""

from __future__ import annotations

import functools
import heapq
import math
import time
from typing import Callable

from repro.obs import current_registry, current_tracer

__all__ = ["EventHandle", "EventQueue", "Simulator", "callback_name"]


def callback_name(callback: Callable[[], None]) -> str:
    """Short classifying name for an event callback (metric label).

    Unwraps ``functools.partial`` and falls back through ``__qualname__`` /
    ``__name__`` / the type name, keeping only the last two qualname parts
    (``UserBehavior.on_complete``-style labels, not full module paths).
    """
    while isinstance(callback, functools.partial):
        callback = callback.func
    name = getattr(callback, "__qualname__", None) or getattr(
        callback, "__name__", None
    )
    if name is None:
        return type(callback).__name__
    parts = [p for p in name.split(".") if p != "<locals>"]
    return ".".join(parts[-2:])


#: qualname -> full metric name; callbacks are fresh closures every event,
#: but their qualnames are a small fixed set, so the per-event label work
#: reduces to one dict hit
_CALLBACK_METRICS: dict[str, str] = {}


def _callback_metric(callback: Callable[[], None]) -> str:
    """``sim.callback.<label>`` metric name, cached by ``__qualname__``."""
    qual = getattr(callback, "__qualname__", None)
    if qual is None:  # partials / odd callables: take the slow path
        return "sim.callback." + callback_name(callback)
    metric = _CALLBACK_METRICS.get(qual)
    if metric is None:
        metric = _CALLBACK_METRICS[qual] = "sim.callback." + callback_name(callback)
    return metric


#: never compact below this many tombstones -- rebuilding tiny heaps costs
#: more than the dead entries they carry
COMPACT_MIN_TOMBSTONES = 64

#: how many events the batched dispatcher drains from the heap per refill;
#: large enough to amortise the per-batch bookkeeping, small enough that the
#: in-flight window (events popped but not yet fired) stays cache-friendly
DISPATCH_BATCH = 128


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.schedule`.

    ``cancelled`` is also set when the event fires (a spent handle), so
    cancelling an already-fired handle is a no-op and the queue's
    tombstone count stays exact.

    ``in_flight`` marks a handle the batched dispatcher has popped off the
    heap but not yet fired.  Cancelling an in-flight handle must still
    suppress the callback (bit-exactness against the per-event oracle) but
    must *not* count a tombstone -- the entry is no longer in the heap, so
    there is nothing for :meth:`EventQueue._compact` to reclaim.
    """

    __slots__ = ("time", "cancelled", "in_flight")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False
        self.in_flight = False


class EventQueue:
    """Time-ordered queue of zero-argument callbacks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, EventHandle, Callable[[], None]]] = []
        self._seq = 0
        #: cancelled entries still sitting in the heap
        self._n_tombstones = 0
        #: lifetime cancels (source of the ``sim.queue.cancelled`` counter)
        self.cancelled_total = 0
        #: lifetime heap rebuilds (``sim.queue.compactions``)
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        """Enqueue ``callback`` to fire at ``time``.

        ``time`` must be finite; infinite "never" events should simply not
        be scheduled.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        handle = EventHandle(time)
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, handle, callback))
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Mark a scheduled event so the pop loop skips it.

        When tombstones outnumber live events (beyond a small floor) the
        heap is compacted, so cancel-heavy workloads cannot grow the heap
        past roughly twice the live event count.
        """
        if handle.cancelled:
            return  # already cancelled, or already fired
        handle.cancelled = True
        self.cancelled_total += 1
        if handle.in_flight:
            # Popped by the batched dispatcher, awaiting its turn: the
            # entry left the heap already, so it is not a tombstone.  The
            # dispatcher sees ``cancelled`` and skips (or drops) it.
            return
        self._n_tombstones += 1
        if (
            self._n_tombstones >= COMPACT_MIN_TOMBSTONES
            and 2 * self._n_tombstones > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (linear-time heapify).

        Mutates the heap list *in place*: the batched dispatcher binds the
        list to a local for the duration of a run, and a compaction
        triggered from inside a callback must not strand that binding on a
        stale list.
        """
        self._heap[:] = [item for item in self._heap if not item[3].cancelled]
        heapq.heapify(self._heap)
        self._n_tombstones = 0
        self.compactions += 1

    def next_time(self) -> float:
        """Time of the earliest live event, or ``inf`` if the queue is empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._n_tombstones -= 1
        return self._heap[0][0] if self._heap else math.inf

    def pop(self) -> tuple[float, Callable[[], None]] | None:
        """Remove and return the earliest live event, or ``None``."""
        while self._heap:
            time, _, _, handle, callback = heapq.heappop(self._heap)
            if not handle.cancelled:
                handle.cancelled = True  # spent: late cancels are no-ops
                return time, callback
            self._n_tombstones -= 1
        return None


class Simulator:
    """Event loop with a monotone clock.

    The clock only moves when events fire; schedule everything relative to
    :attr:`now`.  ``run_until`` processes events with ``time <= t_end`` and
    then sets the clock to ``t_end`` exactly.

    With ``incremental_dispatch=True`` (the default) ``run_until`` drains
    *runs* of events from the heap front in one go -- up to
    :data:`DISPATCH_BATCH` at a time -- instead of paying the
    peek/pop/bookkeeping cycle per event.  Fired order is identical to the
    per-event loop: the remaining run is merged against the live heap top
    after every callback, so an event scheduled mid-run that sorts earlier
    than the rest of the run fires first, exactly as the oracle would.
    ``incremental_dispatch=False`` forces the per-event oracle loop;
    results are bit-identical by contract
    (``tests/sim/test_incremental.py`` pins it).
    """

    def __init__(self, *, incremental_dispatch: bool = True) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.incremental_dispatch = incremental_dispatch
        self._events_processed = 0
        #: batched-dispatch runs drained so far (0 under the oracle loop)
        self.batches = 0
        #: events dispatched through those runs (``sim.events.batched``)
        self.batched_events = 0

    @property
    def events_processed(self) -> int:
        """Total number of callbacks fired so far."""
        return self._events_processed

    def schedule_at(
        self, time: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        """Schedule at an absolute time (must not precede the clock)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        return self.queue.schedule(max(time, self.now), callback, priority=priority)

    def schedule_after(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        """Schedule ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.queue.schedule(self.now + delay, callback, priority=priority)

    def cancel(self, handle: EventHandle) -> None:
        self.queue.cancel(handle)

    def run_until(self, t_end: float, *, max_events: int | None = None) -> int:
        """Fire events up to ``t_end``; return how many fired.

        ``max_events`` guards against runaway self-rescheduling loops in
        user code: at most ``max_events`` callbacks fire, and finding an
        (N+1)-th live event within ``t_end`` raises ``RuntimeError``.  On
        raise the clock stays at the last fired event's time and
        :attr:`events_processed` counts exactly the callbacks that ran.
        """
        if t_end < self.now:
            raise ValueError(f"t_end={t_end} is before now={self.now}")
        reg = current_registry()
        if reg.enabled:
            if self.incremental_dispatch:
                return self._run_until_batched(t_end, max_events, reg)
            return self._run_until_instrumented(t_end, max_events, reg)
        if self.incremental_dispatch:
            return self._run_until_batched(t_end, max_events, None)
        fired = 0
        while True:
            t_next = self.queue.next_time()
            if t_next > t_end:
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events} before reaching t_end={t_end}"
                )
            popped = self.queue.pop()
            if popped is None:
                break
            event_time, callback = popped
            # The clock never runs backwards even if an event was scheduled
            # "now" while another event at the same timestamp was firing.
            self.now = max(self.now, event_time)
            callback()
            fired += 1
            self._events_processed += 1
        self.now = t_end
        return fired

    def _run_until_batched(self, t_end: float, max_events: int | None, reg) -> int:
        """``run_until`` draining batches of heap entries per refill.

        The inner loop is a two-way merge between the drained run (already
        sorted -- it came off the heap in order) and the live heap top, so
        callbacks that schedule new events inside the run's time span keep
        the exact oracle firing order without any push-back churn.  When
        ``reg`` is a live registry, instrumentation is aggregated per
        batch (one ``perf_counter`` pair and one registry call per metric
        per run instead of several per event) with event counts preserved
        exactly.
        """
        queue = self.queue
        heap = queue._heap  # _compact mutates in place; binding stays valid
        pop, push = heapq.heappop, heapq.heappush
        instrumented = reg is not None
        if instrumented:
            tracer_span = current_tracer().span("sim.run_until", t_end=t_end)
            tracer_span.__enter__()
            cancelled_before = queue.cancelled_total
            compactions_before = queue.compactions
            started = time.perf_counter()
            batch_t0 = started
            depth_count = 0
            depth_total = 0
            depth_min = math.inf
            depth_max = -math.inf
            cb_counts: dict[str, int] = {}
        fired = 0
        batch: list = []
        try:
            while True:
                # Refill: drain a run of live entries off the heap front.
                del batch[:]
                while heap and heap[0][0] <= t_end and len(batch) < DISPATCH_BATCH:
                    item = pop(heap)
                    if item[3].cancelled:
                        queue._n_tombstones -= 1
                        continue
                    item[3].in_flight = True
                    batch.append(item)
                n = len(batch)
                if not n:
                    break
                self.batches += 1
                self.batched_events += n
                if instrumented:
                    reg.inc("sim.events.batched", n)
                    reg.observe("sim.events.batch_size", n)
                    batch_t0 = time.perf_counter()
                i = 0
                while i < n:
                    # Merge against the heap: a callback may have scheduled
                    # an event sorting before the rest of the run.  Entry
                    # tuples start (time, priority, seq) with seq unique, so
                    # tuple comparison never reaches the handles.
                    if heap and heap[0] < batch[i]:
                        item = heap[0]
                        handle = item[3]
                        if handle.cancelled:
                            pop(heap)
                            queue._n_tombstones -= 1
                            continue
                        if max_events is not None and fired >= max_events:
                            raise RuntimeError(
                                f"exceeded max_events={max_events} before "
                                f"reaching t_end={t_end}"
                            )
                        pop(heap)
                    else:
                        item = batch[i]
                        handle = item[3]
                        if handle.cancelled:
                            handle.in_flight = False
                            i += 1
                            continue
                        if max_events is not None and fired >= max_events:
                            raise RuntimeError(
                                f"exceeded max_events={max_events} before "
                                f"reaching t_end={t_end}"
                            )
                        handle.in_flight = False
                        i += 1
                    handle.cancelled = True  # spent: late cancels are no-ops
                    event_time = item[0]
                    if event_time > self.now:
                        self.now = event_time
                    if instrumented:
                        depth = len(heap) + n - i
                        depth_count += 1
                        depth_total += depth
                        if depth < depth_min:
                            depth_min = depth
                        if depth > depth_max:
                            depth_max = depth
                        metric = _callback_metric(item[4])
                        cb_counts[metric] = cb_counts.get(metric, 0) + 1
                    item[4]()
                    fired += 1
                if instrumented and depth_count:
                    # Per-callback-type timing attributed evenly across the
                    # run (one timer pair per batch, counts exact), plus
                    # the queue-depth trace, one registry call per metric.
                    elapsed = time.perf_counter() - batch_t0
                    reg.observe_many(
                        "sim.queue_depth",
                        depth_count,
                        depth_total,
                        depth_min,
                        depth_max,
                    )
                    mean = elapsed / depth_count
                    for metric, count in cb_counts.items():
                        reg.observe_many(metric, count, count * mean, mean, mean)
                    depth_count = 0
                    depth_total = 0
                    depth_min = math.inf
                    depth_max = -math.inf
                    cb_counts.clear()
            self.now = t_end
        finally:
            self._events_processed += fired
            if instrumented:
                if depth_count:
                    # max_events raised mid-run: flush the partial batch so
                    # histogram counts still total ``fired`` exactly.
                    elapsed = time.perf_counter() - batch_t0
                    reg.observe_many(
                        "sim.queue_depth",
                        depth_count,
                        depth_total,
                        depth_min,
                        depth_max,
                    )
                    mean = elapsed / depth_count
                    for metric, count in cb_counts.items():
                        reg.observe_many(metric, count, count * mean, mean, mean)
                reg.inc("sim.events", fired)
                reg.inc("sim.run_until_calls")
                reg.inc(
                    "sim.queue.cancelled", queue.cancelled_total - cancelled_before
                )
                reg.inc(
                    "sim.queue.compactions", queue.compactions - compactions_before
                )
                reg.observe("sim.run_until_seconds", time.perf_counter() - started)
                tracer_span.__exit__(None, None, None)
            # On a max_events raise, return unfired in-flight entries so the
            # queue is intact for inspection (clock stays at the last fired
            # event's time, exactly like the oracle loop).
            if batch:
                remaining = [it for it in batch if it[3].in_flight]
                if remaining:
                    for item in remaining:
                        item[3].in_flight = False
                        if not item[3].cancelled:
                            push(heap, item)
        return fired

    def _run_until_instrumented(
        self, t_end: float, max_events: int | None, reg
    ) -> int:
        """The ``run_until`` loop with per-callback-type metrics.

        Kept separate so the un-profiled hot path has zero extra work per
        event.  Records total events, queue depth and per-callback-type
        timing into the active registry, plus one trace span per call.
        """
        fired = 0
        queue = self.queue
        cancelled_before = queue.cancelled_total
        compactions_before = queue.compactions
        with current_tracer().span("sim.run_until", t_end=t_end):
            started = time.perf_counter()
            while True:
                t_next = self.queue.next_time()
                if t_next > t_end:
                    break
                if max_events is not None and fired >= max_events:
                    reg.inc("sim.events", fired)
                    reg.observe(
                        "sim.run_until_seconds", time.perf_counter() - started
                    )
                    raise RuntimeError(
                        f"exceeded max_events={max_events} before reaching "
                        f"t_end={t_end}"
                    )
                popped = self.queue.pop()
                if popped is None:
                    break
                event_time, callback = popped
                self.now = max(self.now, event_time)
                reg.observe("sim.queue_depth", len(self.queue))
                t0 = time.perf_counter()
                callback()
                reg.observe(_callback_metric(callback), time.perf_counter() - t0)
                fired += 1
                self._events_processed += 1
            self.now = t_end
            elapsed = time.perf_counter() - started
        reg.inc("sim.events", fired)
        reg.inc("sim.run_until_calls")
        reg.inc("sim.queue.cancelled", queue.cancelled_total - cancelled_before)
        reg.inc("sim.queue.compactions", queue.compactions - compactions_before)
        reg.observe("sim.run_until_seconds", elapsed)
        return fired
