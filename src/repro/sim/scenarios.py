"""Ready-made simulation scenarios for the four downloading schemes.

:func:`build_simulation` wires the correct topology for a scheme:

========  ==========================  ======================  ==============
scheme    torrents                    behaviour               seed policy
========  ==========================  ======================  ==============
MTCD      K single-file groups        concurrent              subtorrent
MTSD      K single-file groups        sequential              subtorrent
MFCD      1 group with K files        concurrent              subtorrent
CMFSD     1 group with K files        collaborative (rho)     global pool*
========  ==========================  ======================  ==============

(* configurable -- running CMFSD with ``SeedPolicy.SUBTORRENT`` measures how
much the paper's Eq.-(5) global-mixing assumption matters.)

:func:`run_scenario` runs to the horizon and reduces to a
:class:`~repro.sim.metrics.SimulationSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.adapt import AdaptPolicy
from repro.core.correlation import CorrelationModel
from repro.core.parameters import FluidParameters
from repro.core.schemes import Scheme
from repro.sim.adapt_runtime import AdaptRuntime
from repro.sim.arrivals import ArrivalProcess
from repro.sim.behaviors import BehaviorKind, make_behavior
from repro.sim.metrics import SimulationSummary
from repro.sim.rng import RandomStreams
from repro.sim.swarm import SeedPolicy
from repro.sim.system import SimulationSystem

__all__ = ["ScenarioConfig", "build_simulation", "run_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one simulation scenario.

    Attributes
    ----------
    scheme:
        Which downloading scheme to simulate.
    params:
        Fluid parameters (``mu``, ``eta``, ``gamma``, ``K``).
    correlation:
        Workload model, including the visit rate ``lambda_0``.
    t_end / warmup:
        Horizon and the initial transient to discard in summaries.
    rho:
        CMFSD collaboration ratio (ignored by other schemes).
    seed:
        Master RNG seed.
    sample_interval:
        Population snapshot period.
    seed_policy:
        Override the scheme's default seed-placement policy (CMFSD only;
        single-file groups are unaffected by policy).
    depart_together:
        MFCD realism toggle (see :class:`ConcurrentBehavior`).
    adapt / adapt_period:
        When ``adapt`` is set, CMFSD users run per-peer Adapt controllers.
    cheater_fraction:
        Probability that a CMFSD user is a cheater (``rho`` pinned at 1).
    initial_burst:
        Users spawned at t=0 (a flash crowd), classed like Poisson arrivals.
    arrivals_enabled:
        Set ``False`` for pure-drain studies of an initial burst.
    seed_lifetime_distribution:
        Passed to :class:`SimulationSystem` ("exponential"/"fixed"/"uniform").
    incremental_rates:
        Allow the system's incremental (dirty-row) rate recomputation path.
        Disable to force a full kernel pass on every flush -- results must
        be identical; this exists for equivalence testing and debugging.
    incremental_dispatch:
        Allow the simulator's batched event dispatch.  Disable to force
        the per-event dispatch loop -- results must be identical; this
        exists for equivalence testing and debugging.
    deferred_integration:
        Allow the system to defer per-row progress integration inside
        :class:`~repro.sim.bandwidth.RateWindow` windows.  Disable to
        advance every row eagerly on each flush -- results agree up to
        float summation order; this exists for equivalence testing and
        debugging.
    """

    scheme: Scheme
    params: FluidParameters
    correlation: CorrelationModel
    t_end: float = 4000.0
    warmup: float = 1000.0
    rho: float = 0.0
    seed: int = 0
    sample_interval: float = 10.0
    seed_policy: SeedPolicy | None = None
    depart_together: bool = False
    adapt: AdaptPolicy | None = field(default=None)
    adapt_period: float = 20.0
    cheater_fraction: float = 0.0
    initial_burst: int = 0
    arrivals_enabled: bool = True
    seed_lifetime_distribution: str = "exponential"
    neighbor_limit: int | None = None
    incremental_rates: bool = True
    incremental_dispatch: bool = True
    deferred_integration: bool = True

    def __post_init__(self) -> None:
        if self.correlation.num_files != self.params.num_files:
            raise ValueError(
                f"correlation K={self.correlation.num_files} != "
                f"params K={self.params.num_files}"
            )
        if not 0.0 <= self.warmup < self.t_end:
            raise ValueError(f"need 0 <= warmup < t_end, got {self.warmup}, {self.t_end}")
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {self.rho}")
        if not 0.0 <= self.cheater_fraction <= 1.0:
            raise ValueError(
                f"cheater_fraction must be in [0, 1], got {self.cheater_fraction}"
            )
        if self.adapt is not None and self.scheme is not Scheme.CMFSD:
            raise ValueError("Adapt only applies to the CMFSD scheme")
        if self.cheater_fraction > 0 and self.scheme is not Scheme.CMFSD:
            raise ValueError("cheaters only exist under the CMFSD scheme")
        if self.initial_burst < 0:
            raise ValueError(f"initial_burst must be >= 0, got {self.initial_burst}")
        if self.neighbor_limit is not None and self.scheme is Scheme.CMFSD:
            if (self.seed_policy or SeedPolicy.GLOBAL_POOL) is SeedPolicy.GLOBAL_POOL:
                raise ValueError(
                    "neighbor_limit needs SUBTORRENT seed placement; CMFSD "
                    "defaults to GLOBAL_POOL (set seed_policy explicitly)"
                )
        if not self.arrivals_enabled and self.initial_burst == 0:
            raise ValueError(
                "nothing to simulate: arrivals disabled and no initial burst"
            )


def build_simulation(
    config: ScenarioConfig,
) -> tuple[SimulationSystem, ArrivalProcess]:
    """Construct the system, topology and arrival process for a scenario."""
    params = config.params
    K = params.num_files
    system = SimulationSystem(
        mu=params.mu,
        eta=params.eta,
        gamma=params.gamma,
        num_classes=K,
        rng=RandomStreams(config.seed),
        seed_lifetime_distribution=config.seed_lifetime_distribution,
        neighbor_limit=config.neighbor_limit,
        incremental_rates=config.incremental_rates,
        incremental_dispatch=config.incremental_dispatch,
        deferred_integration=config.deferred_integration,
    )

    if config.scheme in (Scheme.MTCD, Scheme.MTSD):
        for f in range(K):
            system.add_group((f,), SeedPolicy.SUBTORRENT)
    else:
        default = (
            SeedPolicy.GLOBAL_POOL if config.scheme is Scheme.CMFSD else SeedPolicy.SUBTORRENT
        )
        system.add_group(tuple(range(K)), config.seed_policy or default)

    per_user_options = None
    if config.scheme is Scheme.MTCD:
        factory = make_behavior(BehaviorKind.CONCURRENT)
    elif config.scheme is Scheme.MTSD:
        factory = make_behavior(BehaviorKind.SEQUENTIAL)
    elif config.scheme is Scheme.MFCD:
        factory = make_behavior(
            BehaviorKind.CONCURRENT, depart_together=config.depart_together
        )
    else:  # CMFSD
        adapt_runtime = (
            AdaptRuntime(system, config.adapt, config.adapt_period)
            if config.adapt is not None
            else None
        )
        factory = make_behavior(
            BehaviorKind.COLLABORATIVE, rho=config.rho, adapt=adapt_runtime
        )
        if config.cheater_fraction > 0:
            frac = config.cheater_fraction

            def per_user_options(rng) -> dict:
                return {"is_cheater": bool(rng.random() < frac)}

    arrivals = ArrivalProcess(
        system,
        config.correlation,
        factory,
        t_end=config.t_end,
        per_user_options=per_user_options,
    )
    return system, arrivals


def run_scenario(config: ScenarioConfig) -> SimulationSummary:
    """Build, run to the horizon and summarise one scenario."""
    system, arrivals = build_simulation(config)
    system.start_sampler(config.sample_interval, config.t_end)
    if config.initial_burst:
        options_fn = arrivals.per_user_options
        for _ in range(config.initial_burst):
            files = config.correlation.sample_file_set(system.rng.files)
            options = options_fn(system.rng.misc) if options_fn else {}
            system.spawn_user(arrivals.behavior_factory, files, **options)
    if config.arrivals_enabled:
        arrivals.start()
    system.run_until(config.t_end)
    system.sync_accounting()
    return system.metrics.summarize(warmup=config.warmup, horizon=config.t_end)
