"""Swarms (per-file subtorrents) and swarm groups (torrents).

A :class:`Swarm` is the population sharing one file: active downloads
(:class:`~repro.sim.entities.DownloadEntry`) plus seed bandwidth
allocations.  A :class:`SwarmGroup` is the paper's *torrent*: one swarm per
file it publishes (a single-file torrent is a group of one).

Seed bandwidth placement follows the group's :class:`SeedPolicy`:

* ``SUBTORRENT`` -- seed capacity attaches to one specific swarm and serves
  only its downloaders (physically what a BitTorrent seed does; the only
  sensible policy for separate single-file torrents, and the model-faithful
  reading of MFCD where each virtual peer seeds its own file).
* ``GLOBAL_POOL`` -- all virtual-seed and real-seed capacity in the group is
  pooled and divided across *every* downloader in the group in proportion
  to download bandwidth.  This is exactly the mixing assumption of the
  paper's Eq. (5) ``S^{i,j}`` term (its denominator sums downloaders of all
  subtorrents), justified there by the randomised download order.  CMFSD
  scenarios default to it; running them under ``SUBTORRENT`` instead
  quantifies the quality of that approximation.

Progress is integrated *lazily*: rates are constant between allocation
changes, so work is only advanced when something changes.  The unit of
laziness matches the unit of rate coupling -- the whole group under
``GLOBAL_POOL`` (everyone shares the pool, so any change retouches every
rate), but a single swarm under ``SUBTORRENT`` (rates never cross swarm
boundaries).  This per-swarm fast path is what keeps large MFCD/MTCD runs
tractable: an event touches one swarm, not a 10-file torrent.

Per-peer numeric state lives in a structure-of-arrays
:class:`~repro.sim.peerstore.PeerStore` per swarm, so every kernel here --
rate recomputation, progress advancement, completion queries -- is a
handful of NumPy array operations rather than a Python loop over entries.
The neighbour-aware path builds a boolean adjacency matrix from the
tracker samples and allocates seed bandwidth with one matrix product.  The
original per-entry loops survive verbatim in :mod:`repro.sim.reference` as
the oracle the vectorised kernels are tested against.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.obs import current_registry
from repro.sim.bandwidth import RateWindow
from repro.sim.entities import DownloadEntry, UserRecord
from repro.sim.peerstore import PeerStore

__all__ = [
    "SCALAR_KERNEL_CUTOFF",
    "SeedPolicy",
    "Swarm",
    "SwarmGroup",
    "WorkSnapshot",
]

#: Swarms at or below this size take scalar (pure-Python) kernel paths --
#: a dozen ufunc launches cost ~40us regardless of n, which dwarfs the
#: arithmetic for the small swarms event-driven runs are made of.  The
#: scalar loops perform the same IEEE operations element-wise, so results
#: are identical; only the capacity *sum* differs in rounding from NumPy's
#: pairwise reduction, and the path choice depends only on n (part of the
#: simulation state), so every run makes the same choice deterministically.
#:
#: The value is *measured*, not guessed:
#: ``benchmarks/test_bench_scalar_cutoff.py`` sweeps the mesh rate kernel
#: and the completion-time scan across swarm sizes bracketing this
#: constant and asserts the scalar path wins below it and the vectorised
#: path wins well above it.  On the reference container (Linux x86-64,
#: NumPy 2.x) the measured crossover is ~45 rows for the mesh kernel and
#: ~90 for the completion scan; 64 sits between the two, so each kernel
#: pays at most a mild loss near the boundary and never a blow-up.
#: Re-run the micro-bench when changing it.
SCALAR_KERNEL_CUTOFF = 64

#: Backwards-compatible alias (pre-promotion name).
_SCALAR_N = SCALAR_KERNEL_CUTOFF


class SeedPolicy(enum.Enum):
    """Where seed bandwidth lands within a group (see module docstring)."""

    SUBTORRENT = "subtorrent"
    GLOBAL_POOL = "global_pool"


class _VersionedDict(dict):
    """Dict that counts its mutations, so kernels can cache derived state.

    The neighbour-aware kernel derives adjacency/connectivity matrices from
    the tracker samples and seed tables; rebuilding them is the expensive
    part, so it keys a cache on these version counters.  Values must be
    *replaced*, never mutated in place (the tracker always assigns fresh
    sets) -- in-place value mutation is invisible to the counter.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key):
        super().__delitem__(key)
        self.version += 1

    def pop(self, *args):
        result = super().pop(*args)
        self.version += 1
        return result

    def popitem(self):
        result = super().popitem()
        self.version += 1
        return result

    def clear(self):
        super().clear()
        self.version += 1

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self.version += 1

    def setdefault(self, key, default=None):
        # Only an actual insert is a mutation: a read-through setdefault on
        # a present key must not invalidate caches keyed on ``version``.
        if key in self:
            return self[key]
        self.version += 1
        return super().setdefault(key, default)


class _SeedTable(_VersionedDict):
    """Seed table ``user_id -> (bandwidth, user_class)`` with a running total.

    Every rate recompute needs the aggregate seed capacity; summing the
    dict is O(#seeds) per recompute and dominates seed-heavy swarms.  The
    table maintains ``total`` across mutations instead, so kernels read it
    in O(1).  The total snaps back to exactly ``0.0`` whenever the table
    empties, keeping ``capacity == 0.0`` assertions exact despite float
    accumulation.
    """

    __slots__ = ("total",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # dict.__init__ bypasses __setitem__, so recount whatever landed
        self.total = sum(bw for bw, _ in self.values())

    def __setitem__(self, key, value):
        old = self.get(key)
        if old is not None:
            self.total -= old[0]
        self.total += value[0]
        super().__setitem__(key, value)

    def __delitem__(self, key):
        bw = self[key][0]
        super().__delitem__(key)
        self.total = self.total - bw if self else 0.0

    def pop(self, *args):
        had = args[0] in self
        result = super().pop(*args)
        if had:
            self.total = self.total - result[0] if self else 0.0
        return result

    def popitem(self):
        key, value = super().popitem()
        self.total = self.total - value[0] if self else 0.0
        return key, value

    def clear(self):
        super().clear()
        self.total = 0.0

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self.total = sum(bw for bw, _ in self.values())

    def setdefault(self, key, default=None):
        if key not in self:
            self.total += default[0]
        return super().setdefault(key, default)


class _TopoState:
    """Incrementally maintained neighbour-topology matrices for one swarm.

    The full :meth:`Swarm._neighbor_topology` rebuild flattens every
    tracker sample and reconstructs the boolean adjacency and the
    seed-reach matrix from scratch -- O(edges + n^2) per structural
    change, which dominates tracker-limited runs (every join, leave and
    seed transition is a structural change).  This state keeps those
    matrices *live* instead: each mutation updates the affected row and
    column in O(degree) (or one vectorised row/column copy), keyed to the
    same version counters the product cache uses.

    Invariants:

    * ``adj[:n, :n]`` equals the full rebuild's symmetrised, zero-diagonal
      adjacency; everything outside that block is ``False``.
    * ``conn[i, :n]`` for ``i < len(row_users)`` equals the full rebuild's
      reach row of seed user ``row_users[i]`` (one row per seed *user*,
      bandwidth filtering happens at gather time); rows/columns beyond the
      used block are ``0.0``.
    * ``rev[v]`` is the set of users whose sample contains ``v`` (the
      reverse of the tracker-sample dict), so ``connected(u, v)`` is
      equivalent to ``v in neighbors[u] or v in rev_entry`` lookups in
      O(1) without scanning the population.
    * ``versions`` is what the four tracked version counters *should* read
      if every mutation since the last sync was journalled through the
      notify hooks.  Any direct mutation (tests poke the dicts) makes the
      real counters run ahead; the mismatch is detected at the next hook
      or gather and the state is dropped -- correctness never depends on
      callers using the hooks.
    """

    __slots__ = (
        "versions",
        "slot_user",
        "slot_of",
        "adj",
        "conn",
        "seed_rows",
        "row_users",
        "rev",
        "prod",
    )

    def __init__(
        self,
        n: int,
        adjacency: "np.ndarray | None",
        user_ids: np.ndarray,
        seed_ids: "np.ndarray | None",
        reach: "np.ndarray | None",
        neighbors: Mapping[int, set],
        versions: tuple,
    ):
        cap = 16
        while cap < n:
            cap *= 2
        self.adj = np.zeros((cap, cap), dtype=bool)
        if n:
            self.adj[:n, :n] = adjacency
        self.slot_user = [int(u) for u in user_ids[:n]]
        self.slot_of = {u: i for i, u in enumerate(self.slot_user)}
        n_rows = 0 if seed_ids is None else int(seed_ids.size)
        row_cap = 8
        while row_cap < n_rows:
            row_cap *= 2
        self.conn = np.zeros((row_cap, cap))
        self.row_users = [] if seed_ids is None else [int(u) for u in seed_ids]
        self.seed_rows = {u: i for i, u in enumerate(self.row_users)}
        if n_rows:
            self.conn[:n_rows, :n] = reach
        rev: dict[int, set] = {}
        for u, sample in neighbors.items():
            for v in sample:
                rev.setdefault(v, set()).add(u)
        self.rev = rev
        #: seed-side gather plan -- ``(seed_versions, rows, bandwidth,
        #: virtual_vec)`` -- cached across gathers because membership and
        #: samples churn far faster than the seed tables (see
        #: :meth:`Swarm._topo_products`)
        self.prod: tuple | None = None
        self.versions = list(versions)

    def grow_slots(self, n: int) -> None:
        """Double the slot capacity until ``n`` downloaders fit."""
        cap = self.adj.shape[0]
        new_cap = cap
        while new_cap < n:
            new_cap *= 2
        adj = np.zeros((new_cap, new_cap), dtype=bool)
        adj[:cap, :cap] = self.adj
        self.adj = adj
        conn = np.zeros((self.conn.shape[0], new_cap))
        conn[:, :cap] = self.conn
        self.conn = conn

    def grow_rows(self, rows: int) -> None:
        """Double the seed-row capacity until ``rows`` rows fit."""
        cap = self.conn.shape[0]
        new_cap = cap
        while new_cap < rows:
            new_cap *= 2
        conn = np.zeros((new_cap, self.conn.shape[1]))
        conn[:cap] = self.conn
        self.conn = conn


@dataclass(frozen=True)
class WorkSnapshot:
    """One consistent view of a swarm's remaining work and rates.

    Completion handling needs two answers -- *which entries are due* and
    *when is the next completion* -- and they must come from the same
    progress state: deriving them from live arrays at two different moments
    can mix rates from two allocation epochs (e.g. when a behaviour
    callback triggers a flush halfway through).  A snapshot copies
    ``remaining`` and ``rate`` once, records the epoch it was taken under,
    and answers every query from those frozen arrays.
    """

    epoch: int
    time: float
    entries: tuple[DownloadEntry, ...]
    remaining: np.ndarray
    rate: np.ndarray

    def etas(self) -> np.ndarray:
        """Per-entry time to completion (0 when done, ``inf`` when stalled)."""
        safe_rate = np.where(self.rate > 0, self.rate, 1.0)
        with np.errstate(over="ignore"):  # tiny rate / huge remaining -> inf is right
            return np.where(
                self.remaining <= 0,
                0.0,
                np.where(self.rate > 0, self.remaining / safe_rate, math.inf),
            )

    def next_completion_time(self) -> float:
        """Absolute time of the earliest completion (``inf`` if none)."""
        if not self.entries:
            return math.inf
        return self.time + float(np.min(self.etas()))

    def due(self, slack: float) -> list[DownloadEntry]:
        """Entries whose snapshotted remaining work is within ``slack``."""
        return [self.entries[i] for i in np.flatnonzero(self.remaining <= slack)]

    def earliest(self) -> tuple[DownloadEntry, float] | None:
        """The entry closest to completion and its eta (``None`` if empty)."""
        if not self.entries:
            return None
        etas = self.etas()
        i = int(np.argmin(etas))
        return self.entries[i], float(etas[i])


class Swarm:
    """Population of one file, with its own lazy-progress clock."""

    def __init__(self, file_id: int):
        self.file_id = file_id
        #: entry key -> active download (membership / identity view)
        self.downloaders: dict[tuple[int, int], DownloadEntry] = {}
        #: structure-of-arrays numeric state backing the entries above
        self.store = PeerStore()
        #: user id -> (bandwidth, user class), seeds that finished everything
        self.real_seeds: dict[int, tuple[float, int]] = _SeedTable()
        #: user id -> (bandwidth, user class), partial seeds (CMFSD)
        self.virtual_seeds: dict[int, tuple[float, int]] = _SeedTable()
        #: time up to which this swarm's progress has been integrated
        self.last_update = 0.0
        #: bumped whenever rates change; completion events carry the epoch
        #: they were planned under so stale ones can be recognised
        self.epoch = 0
        #: tracker-sampled neighbour sets per user (empty dict = full mesh)
        self._neighbors: _VersionedDict = _VersionedDict()
        #: when True, rates only flow along neighbour connections
        self.neighbor_aware = False
        #: (versions) -> topology-derived kernel state; see
        #: :meth:`_neighbor_topology`
        self._topology_cache: tuple | None = None
        #: incrementally maintained adjacency / seed-reach matrices (built
        #: lazily by the first full topology rebuild); ``None`` until then
        #: or after a structural desync
        self._topo_state: _TopoState | None = None
        #: when False the topology is rebuilt from scratch on every version
        #: change -- the forced-full oracle mode (``incremental_rates=False``)
        self.topo_incremental = True
        #: (store.version, total_cap, share) from the last full-mesh kernel
        #: pass; reused by :meth:`recompute_rates_incremental` while swarm
        #: membership is unchanged (the share vector only depends on it)
        self._mesh_cache: tuple | None = None
        #: integral of time this swarm's virtual seeds were uploading
        #: (advanced lazily; see :meth:`settle_virtual_seed`)
        self.virtual_busy_time = 0.0
        #: virtual-seed user id -> ``virtual_busy_time`` at its last settle
        self._virtual_anchor: dict[int, float] = {}
        #: deferred-integration window for this swarm's rate domain.  Under
        #: ``GLOBAL_POOL`` the group rebinds this to its own shared window
        #: (the pool is one rate domain), so :meth:`settle_received` always
        #: sees the integrals that govern this swarm's rows.
        self.win = RateWindow()

    @property
    def neighbors(self) -> dict[int, set[int]]:
        return self._neighbors

    @neighbors.setter
    def neighbors(self, value: Mapping[int, set[int]]) -> None:
        # wholesale replacement (tests, scenario setup) gets a fresh counter;
        # the fresh counter restarts at 0, which could collide with the
        # incremental state's expected versions, so drop the state outright
        self._neighbors = _VersionedDict(value)
        self._topo_state = None

    # ----- membership (store + dict kept in lockstep) ---------------------------

    def add_entry(self, entry: DownloadEntry) -> None:
        """Insert an entry: dict membership plus a store row, atomically."""
        self.downloaders[(entry.user_id, entry.file_id)] = entry
        self.store.attach(entry)
        if self._topo_state is not None:
            self._topo_join(entry.user_id)

    def pop_entry(self, key: tuple[int, int]) -> DownloadEntry:
        """Remove and detach an entry (raises ``KeyError`` when absent)."""
        entry = self.downloaders.pop(key)
        slot = entry._slot
        self.store.detach(entry)
        if self._topo_state is not None:
            self._topo_leave(key[0], slot)
        return entry

    @property
    def n_downloaders(self) -> int:
        return len(self.downloaders)

    @property
    def real_capacity(self) -> float:
        return self.real_seeds.total

    @property
    def virtual_capacity(self) -> float:
        return self.virtual_seeds.total

    def downloader_count_by_class(self, num_classes: int) -> np.ndarray:
        """Vector of downloader counts indexed by user class (1..K)."""
        classes = self.store.column("user_class")
        return np.bincount(classes - 1, minlength=num_classes)[:num_classes].astype(
            float
        )

    def seed_count_by_class(self, num_classes: int) -> np.ndarray:
        """Vector of *real* seed counts indexed by user class (1..K)."""
        counts = np.zeros(num_classes, dtype=float)
        for _bw, klass in self.real_seeds.values():
            counts[klass - 1] += 1
        return counts

    def downloader_count_by_class_stage(self, num_classes: int) -> np.ndarray:
        """Matrix ``M[i-1, j-1]`` of downloaders by (user class, stage).

        The simulator counterpart of Eq. (5)'s ``x^{i,j}`` state (for one
        subtorrent; sum over subtorrents for the torrent-wide population).
        """
        classes = self.store.column("user_class")
        stages = self.store.column("stage")
        flat = (classes - 1) * num_classes + (stages - 1)
        return (
            np.bincount(flat, minlength=num_classes * num_classes)[
                : num_classes * num_classes
            ]
            .reshape(num_classes, num_classes)
            .astype(float)
        )

    # ----- per-swarm lazy progress (SUBTORRENT fast path) -------------------------

    def advance(self, t: float, records: Mapping[int, UserRecord] | None = None) -> None:
        """Integrate current rates up to ``t`` (swarm-local).

        Virtual-seed give/take is *not* pushed into user records here:
        received bandwidth accumulates in the store's
        ``received_virtual_acc`` column and upload time in the
        :attr:`virtual_busy_time` integral, both flushed into records by
        :meth:`sync_virtual_accounting` (or the per-user settle hooks).
        The ``records`` argument is kept for interface compatibility with
        the scalar oracle, which still accounts eagerly.
        """
        del records  # accounting is deferred; see docstring
        dt = t - self.last_update
        if dt < -1e-9:
            raise ValueError(f"cannot advance swarm backwards ({self.last_update} -> {t})")
        if dt <= 0:
            self.last_update = t
            return
        store = self.store
        n = store.n
        if n:
            remaining = store.remaining[:n]
            np.subtract(remaining, store.rate[:n] * dt, out=remaining)
            np.maximum(remaining, 0.0, out=remaining)
            if self.virtual_seeds:
                acc = store.received_virtual_acc[:n]
                np.add(acc, store.rate_from_virtual[:n] * dt, out=acc)
                # swarm-local rule: virtual seeds upload only while this
                # swarm has downloaders (n > 0 here)
                self.virtual_busy_time += dt
        self.last_update = t

    # ----- deferred virtual give/take accounting ---------------------------------

    def settle_virtual_seed(
        self, user_id: int, records: Mapping[int, UserRecord] | None
    ) -> None:
        """Flush one virtual seed's deferred upload integral into its record.

        Must run *before* the seed's bandwidth changes or the seed leaves:
        the busy time accumulated since the last settle was served at the
        old bandwidth.
        """
        seed = self.virtual_seeds.get(user_id)
        if seed is None:
            return
        busy = self.virtual_busy_time
        dt = busy - self._virtual_anchor.get(user_id, 0.0)
        self._virtual_anchor[user_id] = busy
        bw = seed[0]
        if dt > 0.0 and bw > 0.0 and records is not None:
            rec = records.get(user_id)
            if rec is not None:
                rec.uploaded_virtual += bw * dt

    def settle_received(
        self, entry: DownloadEntry, records: Mapping[int, UserRecord] | None
    ) -> None:
        """Flush one downloader's deferred received-from-virtual integral.

        Window-aware: while the domain defers integration, the true
        integral is ``stored + cap * C`` and the row is re-biased to
        ``-cap * C`` so the eventual uniform materialise fold lands it back
        at zero-since-this-settle.  The owner must have accumulated the
        window to *now* first.
        """
        if entry._store is not self.store:
            return
        slot = entry._slot
        store = self.store
        acc = float(store.received_virtual_acc[slot])
        win = self.win
        rebias = 0.0
        if win.active and win.C:
            carried = float(store.download_cap[slot]) * win.C
            acc += carried
            rebias = -carried
        if acc or rebias:
            store.received_virtual_acc[slot] = rebias
            if acc and records is not None:
                rec = records.get(entry.user_id)
                if rec is not None:
                    rec.received_virtual += acc

    def sync_virtual_accounting(
        self, records: Mapping[int, UserRecord] | None
    ) -> None:
        """Flush every deferred give/take integral into the user records.

        Idempotent between advances; totals match the old eager per-advance
        accounting up to float summation order.
        """
        if records is None:
            return
        store = self.store
        n = store.n
        if n:
            acc = store.received_virtual_acc[:n]
            user_ids = store.user_id[:n]
            for i in np.flatnonzero(acc != 0.0):
                rec = records.get(int(user_ids[i]))
                if rec is not None:
                    rec.received_virtual += float(acc[i])
            acc[:] = 0.0
        for user_id in self.virtual_seeds:
            self.settle_virtual_seed(user_id, records)

    def connected(self, a: int, b: int) -> bool:
        """Whether users ``a`` and ``b`` hold a connection (either sampled
        the other from the tracker; BitTorrent connections are mutual)."""
        return b in self.neighbors.get(a, ()) or a in self.neighbors.get(b, ())

    # ----- incremental neighbour-topology maintenance ---------------------------
    #
    # Each hook journals one mutation into ``_topo_state`` (when it exists)
    # so the next :meth:`_neighbor_topology` call can serve the adjacency /
    # seed-reach matrices by gathering instead of rebuilding.  Hooks run
    # *after* the underlying mutation; ``_topo_note`` advances the expected
    # version by the mutation's known delta and verifies the real counters
    # agree -- any unjournalled mutation desyncs the check and drops the
    # state, falling back to a full rebuild.

    def set_neighbor_sample(self, user_id: int, sample: set) -> None:
        """Install a user's tracker sample (replaces any previous one)."""
        state = self._topo_state
        old = self._neighbors.get(user_id) if state is not None else None
        self._neighbors[user_id] = sample
        state = self._topo_note(0)
        if state is not None:
            self._topo_sample_changed(state, user_id, old or (), sample)

    def drop_neighbor_sample(self, user_id: int) -> None:
        """Remove a user's tracker sample (raises ``KeyError`` when absent)."""
        state = self._topo_state
        old = self._neighbors.get(user_id) if state is not None else None
        del self._neighbors[user_id]
        state = self._topo_note(0)
        if state is not None:
            self._topo_sample_changed(state, user_id, old or (), ())

    def _topo_note(self, index: int) -> "_TopoState | None":
        """Advance one expected version component; drop the state on desync."""
        state = self._topo_state
        if state is None:
            return None
        versions = state.versions
        versions[index] += 1
        if (
            self._neighbors.version != versions[0]
            or self.store.version != versions[1]
            or self.virtual_seeds.version != versions[2]
            or self.real_seeds.version != versions[3]
        ):
            self._topo_state = None
            return None
        return state

    def _topo_partners(self, state: _TopoState, user_id: int):
        """Users connected to ``user_id``: sampled by it or sampling it."""
        mine = self._neighbors.get(user_id)
        back = state.rev.get(user_id)
        if mine and back:
            return mine | back
        return mine or back or ()

    def _topo_join(self, user_id: int) -> None:
        """A downloader attached at the store's last slot."""
        state = self._topo_note(1)
        if state is None:
            return
        n = self.store.n  # already includes the fresh row
        slot = n - 1
        if n > state.adj.shape[0]:
            state.grow_slots(n)
        state.slot_user.append(user_id)
        state.slot_of[user_id] = slot
        adj = state.adj
        conn = state.conn
        slot_of = state.slot_of
        seed_rows = state.seed_rows
        for v in self._topo_partners(state, user_id):
            w_slot = slot_of.get(v)
            if w_slot is not None and w_slot != slot:
                adj[slot, w_slot] = True
                adj[w_slot, slot] = True
            row = seed_rows.get(v)
            if row is not None:
                conn[row, slot] = 1.0
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.neighbor.rows")

    def _topo_leave(self, user_id: int, slot: int) -> None:
        """A downloader detached; the store swap-filled its slot."""
        state = self._topo_note(1)
        if state is None:
            return
        n_old = self.store.n + 1  # the store already dropped the row
        last = n_old - 1
        adj = state.adj
        conn = state.conn
        slot_user = state.slot_user
        if slot != last:
            moved = slot_user[last]
            slot_user[slot] = moved
            state.slot_of[moved] = slot
            adj[slot, :n_old] = adj[last, :n_old]
            adj[:n_old, slot] = adj[:n_old, last]
            adj[slot, slot] = False
            conn[:, slot] = conn[:, last]
        slot_user.pop()
        del state.slot_of[user_id]
        adj[last, :n_old] = False
        adj[:n_old, last] = False
        conn[:, last] = 0.0
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.neighbor.rows")

    def _topo_sample_changed(
        self, state: _TopoState, user_id: int, old, new
    ) -> None:
        """Re-derive the edges whose sample endpoint changed (O(degree))."""
        rev = state.rev
        for v in old:
            if v not in new:
                back = rev.get(v)
                if back is not None:
                    back.discard(user_id)
        for v in new:
            if v not in old:
                rev.setdefault(v, set()).add(user_id)
        neighbors = self._neighbors
        slot_of = state.slot_of
        seed_rows = state.seed_rows
        slot_u = slot_of.get(user_id)
        row_u = seed_rows.get(user_id)
        adj = state.adj
        conn = state.conn
        changed = set(old) ^ set(new)
        for v in changed:
            linked = (v in new) or (user_id in neighbors.get(v, ()))
            if v == user_id:
                # a self-loop sample only ever shows up in the seed reach
                # (the adjacency diagonal is cleared by construction)
                if row_u is not None and slot_u is not None:
                    conn[row_u, slot_u] = 1.0 if linked else 0.0
                continue
            slot_v = slot_of.get(v)
            if slot_v is not None:
                if slot_u is not None:
                    adj[slot_u, slot_v] = linked
                    adj[slot_v, slot_u] = linked
                if row_u is not None:
                    conn[row_u, slot_v] = 1.0 if linked else 0.0
            if slot_u is not None:
                row_v = seed_rows.get(v)
                if row_v is not None:
                    conn[row_v, slot_u] = 1.0 if linked else 0.0
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.neighbor.rows")

    def _topo_seed_added(self, user_id: int, virtual: bool) -> None:
        """A seed allocation appeared; ensure the user has a reach row."""
        state = self._topo_note(2 if virtual else 3)
        if state is None:
            return
        if user_id in state.seed_rows:
            return  # the other table already gave this user a row
        row = len(state.row_users)
        if row >= state.conn.shape[0]:
            state.grow_rows(row + 1)
        state.row_users.append(user_id)
        state.seed_rows[user_id] = row
        conn = state.conn
        slot_of = state.slot_of
        for v in self._topo_partners(state, user_id):
            w_slot = slot_of.get(v)
            if w_slot is not None:
                conn[row, w_slot] = 1.0
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.neighbor.rows")

    def _topo_seed_removed(self, user_id: int, virtual: bool) -> None:
        """A seed allocation left; drop the reach row when none remain."""
        state = self._topo_note(2 if virtual else 3)
        if state is None:
            return
        if user_id in self.virtual_seeds or user_id in self.real_seeds:
            return  # still holds the other allocation: the row stays
        row = state.seed_rows.pop(user_id, None)
        if row is None:
            return
        row_users = state.row_users
        last = len(row_users) - 1
        conn = state.conn
        if row != last:
            moved = row_users[last]
            row_users[row] = moved
            state.seed_rows[moved] = row
            conn[row] = conn[last]
        row_users.pop()
        conn[last] = 0.0
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.neighbor.rows")

    def _topo_seed_updated(self, user_id: int, virtual: bool) -> None:
        """A seed's bandwidth changed in place: reach rows are unaffected
        (bandwidth enters at gather time), only the version advances."""
        del user_id
        self._topo_note(2 if virtual else 3)

    def recompute_rates(self, eta: float) -> None:
        """Refresh entry rates from swarm-local allocations.

        Rates are capped at each entry's download bandwidth (a peer cannot
        receive faster than its link); the cap only binds in drain tails
        where few downloaders face many seeds.  Under ``neighbor_aware``
        the full-mesh math is replaced by per-connection flows (see
        :meth:`_recompute_rates_neighbor_aware`).
        """
        self.epoch += 1
        reg = current_registry()
        if self.neighbor_aware:
            # full-vs-incremental accounting happens inside
            # _neighbor_topology, which knows whether it rebuilt or gathered
            self._recompute_rates_neighbor_aware(eta)
            return
        if reg.enabled:
            reg.inc("sim.kernel.mesh.full")
            reg.inc("sim.kernel.mesh.peers", self.store.n)
        store = self.store
        n = store.n
        if n == 0:
            self._mesh_cache = (store.version, 0.0, None)
            return
        sv = self.virtual_seeds.total
        sr = self.real_seeds.total
        if n <= SCALAR_KERNEL_CUTOFF:
            # scalar fast path; the cached share is kept as a list so the
            # incremental path stays scalar for the same membership
            caps = store.download_cap[:n].tolist()
            tft = store.tft_upload[:n].tolist()
            total_cap = 0.0
            for c in caps:
                total_cap += c
            pool = sv + sr
            share: "list | np.ndarray" = [0.0] * n
            rate_l = [0.0] * n
            rfv_l = [0.0] * n
            for i in range(n):
                c = caps[i]
                s = c / total_cap if total_cap > 0.0 else 0.0
                r = eta * tft[i] + s * pool
                rv = s * sv
                if r > c > 0.0:
                    rv *= c / r
                    r = c
                share[i] = s
                rate_l[i] = r
                rfv_l[i] = rv
            store.rate[:n] = rate_l
            store.rate_from_virtual[:n] = rfv_l
            self._mesh_cache = (store.version, total_cap, share)
            return
        caps = store.download_cap[:n]
        total_cap = float(np.sum(caps))
        if total_cap > 0:
            share = caps / total_cap
        else:
            share = np.zeros(n)
        rate = eta * store.tft_upload[:n] + share * (sv + sr)
        rate_from_virtual = share * sv
        _apply_download_caps(rate, rate_from_virtual, caps)
        store.rate[:n] = rate
        store.rate_from_virtual[:n] = rate_from_virtual
        self._mesh_cache = (store.version, total_cap, share)

    def recompute_rates_incremental(
        self, eta: float, entries: "list[DownloadEntry] | None" = None
    ) -> bool:
        """Refresh rates reusing the cached capacity shares when possible.

        Valid only while membership is unchanged since the last full pass
        (the cached ``share = caps / total_cap`` vector depends only on
        membership and download caps, both frozen between attach/detach):

        * ``entries=None`` -- seed capacity changed: every row's rate is
          refreshed from the cached shares and the O(1) seed totals,
          skipping the capacity reduction and division.
        * ``entries=[...]`` -- only those downloaders' ``tft_upload``
          changed: just their rows are rewritten, scalar math identical
          (bit-for-bit) to the vectorised kernel's per-element operations.

        Returns ``False`` on cache miss (no pass yet, membership moved, or
        neighbour-aware allocation, whose topology products have their own
        cache); the caller then falls back to :meth:`recompute_rates`,
        which is the oracle this path must match exactly.
        """
        if self.neighbor_aware:
            return False
        store = self.store
        cache = self._mesh_cache
        if cache is None or cache[0] != store.version:
            return False
        n = store.n
        self.epoch += 1
        reg = current_registry()
        if n == 0:
            if reg.enabled:
                reg.inc("sim.kernel.mesh.incremental")
            return True
        share = cache[2]
        sv = self.virtual_seeds.total
        sr = self.real_seeds.total
        if entries is not None and 4 * len(entries) > n:
            entries = None  # vector pass is cheaper than many scalar rows
        if entries is None:
            if type(share) is list:  # small swarm: the full pass was scalar
                caps = store.download_cap[:n].tolist()
                tft = store.tft_upload[:n].tolist()
                pool = sv + sr
                rate_l = [0.0] * n
                rfv_l = [0.0] * n
                for i in range(n):
                    s = share[i]
                    r = eta * tft[i] + s * pool
                    rv = s * sv
                    c = caps[i]
                    if r > c > 0.0:
                        rv *= c / r
                        r = c
                    rate_l[i] = r
                    rfv_l[i] = rv
                store.rate[:n] = rate_l
                store.rate_from_virtual[:n] = rfv_l
            else:
                caps = store.download_cap[:n]
                rate = eta * store.tft_upload[:n] + share * (sv + sr)
                rate_from_virtual = share * sv
                _apply_download_caps(rate, rate_from_virtual, caps)
                store.rate[:n] = rate
                store.rate_from_virtual[:n] = rate_from_virtual
            if reg.enabled:
                reg.inc("sim.kernel.mesh.incremental")
                reg.inc("sim.kernel.mesh.rows", n)
            return True
        pool = sv + sr
        rows = 0
        for entry in entries:
            if entry._store is not store:
                continue  # departed since it was marked dirty
            i = entry._slot
            s = float(share[i])
            rate = eta * float(store.tft_upload[i]) + s * pool
            rate_from_virtual = s * sv
            cap = float(store.download_cap[i])
            if rate > cap > 0:
                scale = cap / rate
                rate = cap
                rate_from_virtual *= scale
            store.rate[i] = rate
            store.rate_from_virtual[i] = rate_from_virtual
            rows += 1
        if reg.enabled:
            reg.inc("sim.kernel.mesh.incremental")
            reg.inc("sim.kernel.mesh.rows", rows)
        return True

    def _recompute_rates_neighbor_aware(self, eta: float) -> None:
        """Bounded-connectivity allocation as adjacency matrix + matmul.

        * Tit-for-tat returns ``eta * upload`` only to downloaders with at
          least one connected downloader partner to trade with.
        * Each seed allocation is split across the downloaders *connected
          to that seed*, proportionally to their download capacity; a seed
          with no connected downloader idles (the mixing loss the fluid
          models assume away).

        Connections are mutual, so the downloader adjacency is the
        symmetrised sample matrix; seed service is a single matrix-vector
        product of the seed-connectivity matrix against per-seed
        bandwidth-per-unit-capacity coefficients.
        """
        store = self.store
        n = store.n
        if n == 0:
            return
        caps = store.column("download_cap")
        tft = store.column("tft_upload")

        has_partner, connectivity, bandwidth, virtual_vec = self._neighbor_topology()
        rate = np.where(has_partner, eta * tft, 0.0)
        if connectivity is not None:
            reachable_cap = connectivity @ caps
            coeff = np.divide(
                bandwidth,
                reachable_cap,
                out=np.zeros(bandwidth.size),
                where=reachable_cap > 0,
            )
            rate = rate + caps * (connectivity.T @ coeff)
            rate_from_virtual = caps * (connectivity.T @ (coeff * virtual_vec))
        else:
            rate_from_virtual = np.zeros(n)
        _apply_download_caps(rate, rate_from_virtual, caps)
        store.rate[:n] = rate
        store.rate_from_virtual[:n] = rate_from_virtual

    def _neighbor_topology(self):
        """Topology-derived kernel state, cached across unchanged epochs.

        Returns ``(has_partner, connectivity, bandwidth, virtual_vec)``:
        which downloaders have a connected downloader partner, the
        seed-allocation x downloader-slot connectivity matrix (``None``
        when no seed has positive bandwidth), per-allocation bandwidths
        and a 0/1 virtual-allocation indicator.

        Everything here depends only on membership (store slots), the
        tracker samples and the seed tables -- not on capacities or
        progress -- so it is cached and rebuilt only when one of those
        version counters moves.  Between full rebuilds the incrementally
        maintained ``_topo_state`` (see :class:`_TopoState`) serves a
        changed topology by *gathering* from its live matrices -- O(n)
        row slices instead of the O(edges + n^2) reconstruction -- so a
        full rebuild only happens when the state was desynced by a direct
        (unjournalled) mutation or disabled via ``topo_incremental``.

        Counters: ``sim.kernel.neighbor.incremental`` counts product-cache
        hits and state gathers, ``sim.kernel.neighbor.full`` /
        ``sim.kernel.neighbor.peers`` count full rebuilds and the rows
        they touched, ``sim.kernel.neighbor.rows`` (incremented by the
        notify hooks) counts O(degree) state maintenance operations.
        """
        neighbors = self._neighbors
        versions = (
            neighbors.version,
            self.store.version,
            self.virtual_seeds.version,
            self.real_seeds.version,
        )
        reg = current_registry()
        if self._topology_cache is not None and self._topology_cache[0] == versions:
            if reg.enabled:
                reg.inc("sim.kernel.neighbor.incremental")
            return self._topology_cache[1]

        state = self._topo_state
        if state is not None:
            if tuple(state.versions) == versions:
                topology = self._topo_products(state)
                if topology is not None:
                    self._topology_cache = (versions, topology)
                    if reg.enabled:
                        reg.inc("sim.kernel.neighbor.incremental")
                    return topology
            # desynced (direct mutation) or internally inconsistent: rebuild
            self._topo_state = None

        store = self.store
        n = store.n
        user_ids = store.column("user_id")
        if reg.enabled:
            reg.inc("sim.kernel.neighbor.full")
            reg.inc("sim.kernel.neighbor.peers", n)

        # Flatten the tracker samples into one (src, dst) edge array; all
        # subsequent id -> slot mapping is vectorised (searchsorted), which
        # is what keeps this kernel ahead of the scalar loop -- per-edge
        # Python dict lookups would dominate the matmul.
        if neighbors:
            keys = np.fromiter(neighbors.keys(), dtype=np.int64, count=len(neighbors))
            degrees = np.fromiter(
                (len(s) for s in neighbors.values()),
                dtype=np.int64,
                count=len(neighbors),
            )
            n_edges = int(degrees.sum())
            dst = np.fromiter(
                (u for s in neighbors.values() for u in s),
                dtype=np.int64,
                count=n_edges,
            )
            src = np.repeat(keys, degrees)
        else:
            src = dst = np.empty(0, dtype=np.int64)

        slot_order = np.argsort(user_ids, kind="stable")
        sorted_ids = user_ids[slot_order]

        def to_slot(ids: np.ndarray) -> np.ndarray:
            """Downloader slot of each user id (-1 when not a downloader)."""
            pos = np.minimum(np.searchsorted(sorted_ids, ids), n - 1)
            return np.where(sorted_ids[pos] == ids, slot_order[pos], -1)

        src_slot = to_slot(src)
        dst_slot = to_slot(dst)

        adjacency = np.zeros((n, n), dtype=bool)
        both = (src_slot >= 0) & (dst_slot >= 0)
        adjacency[src_slot[both], dst_slot[both]] = True
        adjacency |= adjacency.T
        np.fill_diagonal(adjacency, False)
        has_partner = adjacency.any(axis=1)

        seeds = [
            (seed_user, bw, virtual)
            for virtual, table in ((True, self.virtual_seeds), (False, self.real_seeds))
            for seed_user, (bw, _) in table.items()
            if bw > 0
        ]
        # Connection rows are per seed *user* (a user may hold a virtual
        # and a real seed at once) and are built for every seed user --
        # zero-bandwidth allocations included -- so the reconstructed
        # incremental state stays valid when a bandwidth later turns
        # positive.  Only positive-bandwidth rows enter the product.
        seed_users = sorted(set(self.virtual_seeds) | set(self.real_seeds))
        if seed_users:
            unique_ids = np.array(seed_users, dtype=np.int64)

            def to_seed_row(ids: np.ndarray) -> np.ndarray:
                if ids.size == 0:
                    return np.empty(0, dtype=np.int64)
                pos = np.minimum(
                    np.searchsorted(unique_ids, ids), unique_ids.size - 1
                )
                return np.where(unique_ids[pos] == ids, pos, -1)

            reach = np.zeros((unique_ids.size, n))
            # downloader sampled the seed (src is a slot, dst is a seed)
            seed_of_dst = to_seed_row(dst)
            hit = (src_slot >= 0) & (seed_of_dst >= 0)
            reach[seed_of_dst[hit], src_slot[hit]] = 1.0
            # seed sampled the downloader (src is a seed, dst is a slot)
            seed_of_src = to_seed_row(src)
            hit = (seed_of_src >= 0) & (dst_slot >= 0)
            reach[seed_of_src[hit], dst_slot[hit]] = 1.0
        else:
            unique_ids = reach = None
        if seeds:
            seed_ids = np.array([s for s, _, _ in seeds], dtype=np.int64)
            rows = np.searchsorted(unique_ids, seed_ids)
            connectivity = reach[rows]
            bandwidth = np.array([bw for _, bw, _ in seeds])
            virtual_vec = np.array([float(v) for *_, v in seeds])
        else:
            connectivity = bandwidth = virtual_vec = None

        if self.topo_incremental:
            self._topo_state = _TopoState(
                n, adjacency, user_ids, unique_ids, reach, neighbors, versions
            )

        topology = (has_partner, connectivity, bandwidth, virtual_vec)
        self._topology_cache = (versions, topology)
        return topology

    def _topo_products(self, state: "_TopoState"):
        """Gather the topology tuple from the live incremental state.

        Returns ``None`` when the state turns out internally inconsistent
        (a seed allocation without a reach row), signalling the caller to
        fall back to a full rebuild.  The gathered arrays are bit-exact
        matches of the full rebuild's: boolean any() over the same
        adjacency block, and a fancy-indexed (fresh, C-contiguous) copy
        of the same reach rows.
        """
        n = self.store.n
        has_partner = state.adj[:n, :n].any(axis=1)
        seed_versions = (state.versions[2], state.versions[3])
        prod = state.prod
        if prod is None or prod[0] != seed_versions:
            # the seed-side plan (which rows enter the product, at what
            # bandwidth) only moves with the seed tables, which churn far
            # slower than membership/samples -- rebuild it lazily
            seeds = [
                (seed_user, bw, virtual)
                for virtual, table in (
                    (True, self.virtual_seeds),
                    (False, self.real_seeds),
                )
                for seed_user, (bw, _) in table.items()
                if bw > 0
            ]
            if seeds:
                seed_rows = state.seed_rows
                try:
                    rows = [seed_rows[s] for s, _, _ in seeds]
                except KeyError:
                    return None
                bandwidth = np.array([bw for _, bw, _ in seeds])
                virtual_vec = np.array([float(v) for *_, v in seeds])
            else:
                rows = bandwidth = virtual_vec = None
            prod = state.prod = (seed_versions, rows, bandwidth, virtual_vec)
        _, rows, bandwidth, virtual_vec = prod
        if rows is not None:
            connectivity = state.conn[:, :n][rows]
        else:
            connectivity = None
        return (has_partner, connectivity, bandwidth, virtual_vec)

    # ----- completion queries (one shared snapshot) -----------------------------

    def work_snapshot(self) -> WorkSnapshot:
        """Freeze (entries, remaining, rate) under the current epoch."""
        store = self.store
        n = store.n
        return WorkSnapshot(
            epoch=self.epoch,
            time=self.last_update,
            entries=tuple(store.entries),
            remaining=store.remaining[:n].copy(),
            rate=store.rate[:n].copy(),
        )

    def next_completion_time(self) -> float:
        """Absolute time of the earliest completion (``inf`` if none)."""
        store = self.store
        n = store.n
        if n == 0:
            return math.inf
        if n <= SCALAR_KERNEL_CUTOFF:
            remaining_l = store.remaining[:n].tolist()
            rate_l = store.rate[:n].tolist()
            eta_min = math.inf
            for i in range(n):
                rem = remaining_l[i]
                if rem <= 0.0:
                    # a finished entry is due immediately regardless of rate
                    return self.last_update
                r = rate_l[i]
                if r > 0.0:
                    eta = rem / r
                    if eta < eta_min:
                        eta_min = eta
            if eta_min <= 0.0:
                return self.last_update
            return self.last_update + eta_min
        remaining = store.remaining[:n]
        rate = store.rate[:n]
        etas = np.full(n, math.inf)
        with np.errstate(over="ignore"):  # tiny rate / huge remaining -> inf is right
            np.divide(remaining, rate, out=etas, where=rate > 0.0)
        eta_min = float(etas.min())
        # a finished entry is due immediately regardless of its rate
        if eta_min <= 0.0 or bool((remaining <= 0.0).any()):
            return self.last_update
        return self.last_update + eta_min

    def due_entries(self, slack: float) -> list[DownloadEntry]:
        store = self.store
        n = store.n
        if n <= SCALAR_KERNEL_CUTOFF:
            remaining = store.remaining[:n].tolist()
            entries = store.entries
            return [entries[i] for i in range(n) if remaining[i] <= slack]
        remaining = store.remaining[:n]
        return [store.entries[i] for i in np.flatnonzero(remaining <= slack)]

    # ----- deferred integration (swarm-local rate domain) -------------------------
    #
    # These drive :class:`~repro.sim.bandwidth.RateWindow` for a SUBTORRENT
    # domain; the system only calls them on swarms that own their window
    # (never on GLOBAL_POOL members, which share the group's).

    def win_start(self, eta: float, t: float, bound: float, sync) -> bool:
        """Open a deferred window after an exact flush (rates fresh at ``t``).

        Refuses when the factorised trajectory cannot represent this state:
        neighbour-aware allocation, a stale share cache, a zero-cap row
        (rounds ``q_max`` down to the unusable ``-inf``) or an already
        clipped rate.
        """
        if self.neighbor_aware:
            return False
        store = self.store
        cache = self._mesh_cache
        if cache is None or cache[0] != store.version:
            return False
        total_cap = cache[1]
        sv = self.virtual_seeds.total
        sr = self.real_seeds.total
        if total_cap > 0.0:
            q = (sv + sr) / total_cap
            qv = sv / total_cap
        else:
            q = qv = 0.0
        n = store.n
        if n:
            caps = store.download_cap[:n]
            if float(caps.min()) <= 0.0:
                return False
            ratios = eta * (store.tft_upload[:n] / caps)
            q_max = 1.0 - float(ratios.max())
            if q > q_max:
                return False
            ratio_min = float(ratios.min())
        else:
            q_max = math.inf
            ratio_min = math.inf
        self.win.start(
            eta=eta,
            t=t,
            q=q,
            qv=qv,
            q_max=q_max,
            ratio_min=ratio_min,
            total_cap=total_cap,
            bound=bound,
        )
        store._sync = sync
        return True

    def win_accumulate(self, t: float) -> None:
        """Extend the window's integrals to ``t`` (before any mutation)."""
        dt = self.win.accumulate(t)
        if dt > 0.0 and self.virtual_seeds and self.store.n:
            # same rule as :meth:`advance`: swarm-local virtual seeds are
            # busy only while this swarm has downloaders
            self.virtual_busy_time += dt

    def win_bias_attached(self, entry: DownloadEntry) -> None:
        """Pre-charge a freshly attached row so the uniform fold is exact."""
        _win_bias_row(self.win, self.store, entry._slot)

    def win_refresh(self, joins: "list[DownloadEntry] | None" = None) -> bool:
        """Absorb seed/join mutations into the window in O(changes).

        Recomputes ``q``/``qv`` from the O(1) seed totals and the running
        ``total_cap``, updates the completion bound, and folds each join's
        own time-to-completion in.  ``False`` means the window cannot hold
        the new state -- materialise and take the exact path.
        """
        win = self.win
        total_cap = win.total_cap
        sv = self.virtual_seeds.total
        sr = self.real_seeds.total
        if total_cap > 0.0:
            q = (sv + sr) / total_cap
            qv = sv / total_cap
        else:
            q = qv = 0.0
        if not win.refresh(q, qv, self.store.n):
            return False
        if joins:
            store = self.store
            for entry in joins:
                if entry._store is not store:
                    continue  # departed again before the flush
                win.note_row(_win_join_eta(win, store, entry._slot, q))
        return True

    def win_next_completion(self) -> "tuple[float, DownloadEntry | None]":
        """Earliest completion under the open window, without materialising.

        Exact at the window's current ``q`` (the same linear fold the
        materialise pass applies, element-wise identical), so a completion
        event that fired at a stale conservative bound can re-plan in one
        vector pass and keep the window open.  The caller must have
        accumulated the window to *now* first.  Returns ``(time, entry)``
        of the earliest row (``(inf, None)`` when empty).
        """
        win = self.win
        return _win_next_completion(win, self.store, win.t)

    def win_due(self, eps: float) -> "tuple[float, list[DownloadEntry], float]":
        """Entries due within ``eps`` of now, judged in window space.

        Returns ``(t_next, due, t_rest)``: the earliest completion time
        (``inf`` when empty), the due rows, and the earliest completion
        among the rows that stay -- the window's next bound once the due
        rows leave.  The caller must have accumulated the window to *now*
        first.
        """
        win = self.win
        return _win_due(win, self.store, win.t, eps)

    def win_complete(self, entry: DownloadEntry, records) -> None:
        """Retire one due row without closing the window (per-row fold)."""
        _win_complete_row(self.win, self, records, entry)
        if self.store.n == 0:
            self.win.total_cap = 0.0  # resorb subtraction drift exactly

    def win_materialize(self, t: float) -> None:
        """Fold the window into per-row state; the window goes inactive.

        Rates are *not* refreshed here -- every row still carries its
        window-start rate, so the caller must follow up with a recompute
        (or seeds-strength incremental refresh) before anything reads them.
        """
        win = self.win
        if not win.active:
            return
        self.win_accumulate(t)
        _win_fold_store(win, self.store)
        self.last_update = win.t
        win.active = False
        self.store._sync = None


#: shared placeholder for the cached share vector of an empty swarm
_EMPTY_SHARE = np.zeros(0)


def _win_bias_row(win: RateWindow, store: PeerStore, slot: int) -> None:
    """Adopt one freshly attached row into an open window.

    Pre-charges the row's stored state with the integrals accumulated
    before it joined (so the eventual uniform fold is exact) and folds its
    capacity and tft/cap ratio into the window's scalars.
    """
    tft = float(store.tft_upload[slot])
    cap = float(store.download_cap[slot])
    bias = win.eta * tft * (win.t - win.t_start) + cap * win.B
    if bias:
        store.remaining[slot] += bias
    if win.C:
        store.received_virtual_acc[slot] -= cap * win.C
    win.total_cap += cap
    if cap > 0.0:
        ratio = win.eta * tft / cap
        thr = 1.0 - ratio
        if thr < win.q_max:
            win.q_max = thr
        if ratio < win.ratio_min:
            win.ratio_min = ratio
    else:
        win.q_max = -math.inf  # zero-cap row: next refresh materialises


def _win_join_eta(win: RateWindow, store: PeerStore, slot: int, q: float) -> float:
    """Unclipped time-to-completion of a just-joined (biased) row."""
    tft = float(store.tft_upload[slot])
    cap = float(store.download_cap[slot])
    rate = win.eta * tft + cap * q
    if rate <= 0.0:
        return math.inf
    remaining = (
        float(store.remaining[slot])
        - win.eta * tft * (win.t - win.t_start)
        - cap * win.B
    )
    return remaining / rate if remaining > 0.0 else 0.0


def _win_fold_store(win: RateWindow, store: PeerStore) -> None:
    """Apply the window's integrals to every row of one store, in place."""
    n = store.n
    if not n:
        return
    coef_t = win.eta * (win.t - win.t_start)
    if coef_t or win.B:
        remaining = store.remaining[:n]
        np.subtract(
            remaining,
            coef_t * store.tft_upload[:n] + win.B * store.download_cap[:n],
            out=remaining,
        )
        np.maximum(remaining, 0.0, out=remaining)
    if win.C:
        acc = store.received_virtual_acc[:n]
        np.add(acc, win.C * store.download_cap[:n], out=acc)


def _win_next_completion(
    win: RateWindow, store: PeerStore, t: float
) -> "tuple[float, DownloadEntry | None]":
    """Earliest completion of one store's rows under an open window.

    Uses the same per-element fold expression as :func:`_win_fold_store`,
    so "due at materialise" and "due here" agree bit-for-bit.
    """
    if not store.n:
        return math.inf, None
    etas = _win_etas(win, store)
    i = int(np.argmin(etas))
    return t + float(etas[i]), store.entries[i]


def _win_etas(win: RateWindow, store: PeerStore) -> np.ndarray:
    """Per-row time-to-completion under the open window.

    The remaining-work expression matches :func:`_win_fold_store`
    element-wise, so every judgement made here agrees bit-for-bit with
    what a materialise would produce.  Rates are sums of nonnegative
    terms, so plain division suffices: a stalled positive row divides to
    ``+inf`` and every finished row is forced due by the final mask.
    """
    n = store.n
    tft = store.tft_upload[:n]
    caps = store.download_cap[:n]
    coef_t = win.eta * (win.t - win.t_start)
    remaining = store.remaining[:n] - (coef_t * tft + win.B * caps)
    rate = win.eta * tft + win.q * caps
    with np.errstate(divide="ignore", invalid="ignore"):
        etas = remaining / rate
    etas[remaining <= 0.0] = 0.0  # done rows are due regardless of rate
    return etas


def _win_due(
    win: RateWindow, store: PeerStore, t: float, eps: float
) -> "tuple[float, list[DownloadEntry], float]":
    """Earliest completion, the rows due within ``eps``, and the earliest
    *non-due* completion (the bound the window keeps once the due rows
    leave; ``inf`` when every row is due)."""
    n = store.n
    if not n:
        return math.inf, [], math.inf
    if n <= SCALAR_KERNEL_CUTOFF:
        # scalar fast path (same cutoff as the rate kernels): python-float
        # arithmetic with the exact expression shape of the vector pass,
        # so the judgements agree bit-for-bit
        eta_w = win.eta
        q = win.q
        B = win.B
        coef_t = eta_w * (win.t - win.t_start)
        tft = store.tft_upload[:n].tolist()
        caps = store.download_cap[:n].tolist()
        rem = store.remaining[:n].tolist()
        entries = store.entries
        due: list[DownloadEntry] = []
        t_due = math.inf
        t_rest = math.inf
        for i in range(n):
            tf = tft[i]
            cp = caps[i]
            r = rem[i] - (coef_t * tf + B * cp)
            if r <= 0.0:
                e = 0.0
            else:
                rate = eta_w * tf + q * cp
                e = r / rate if rate > 0.0 else math.inf
            if e <= eps:
                due.append(entries[i])
                if e < t_due:
                    t_due = e
            elif e < t_rest:
                t_rest = e
        t_next = t_due if t_due < t_rest else t_rest
        return t + t_next, due, t + t_rest if t_rest < math.inf else math.inf
    etas = _win_etas(win, store)
    t_min = float(etas.min())
    if t_min > eps:
        t_next = t + t_min
        return t_next, [], t_next
    due_mask = etas <= eps
    entries = store.entries
    due = [entries[i] for i in np.flatnonzero(due_mask)]
    rest = etas[~due_mask]
    t_rest = t + float(rest.min()) if rest.size else math.inf
    return t + t_min, due, t_rest


def _win_complete_row(win: RateWindow, swarm, records, entry: DownloadEntry) -> None:
    """Detach one due row from an open window without folding the rest.

    Applies the uniform fold to just this row (same expression as
    :func:`_win_fold_store`), settles its deferred received-from-virtual
    integral into the user record, freezes its final (unclipped -- the
    window invariant guarantees no row clips) rate into the detached
    entry, and removes its capacity from the window's running total.
    ``q_max``/``ratio_min`` are left stale-conservative: the departed row
    can only have made them tighter than necessary, never unsafe.
    """
    store = swarm.store
    # settle adds cap*C to the flushed integral and re-biases the row for a
    # later uniform fold; the row leaves before any such fold, so zero the
    # re-bias below rather than carrying it out on the detached entry
    swarm.settle_received(entry, records)
    slot = entry._slot
    tft = float(store.tft_upload[slot])
    cap = float(store.download_cap[slot])
    rem = float(store.remaining[slot]) - (
        win.eta * tft * (win.t - win.t_start) + cap * win.B
    )
    store.remaining[slot] = rem if rem > 0.0 else 0.0
    store.received_virtual_acc[slot] = 0.0
    store.rate[slot] = win.eta * tft + cap * win.q
    store.rate_from_virtual[slot] = cap * win.qv
    win.total_cap -= cap
    swarm.pop_entry((entry.user_id, entry.file_id))


def _apply_download_caps(
    rate: np.ndarray, rate_from_virtual: np.ndarray, caps: np.ndarray
) -> None:
    """Clip rates at the download link in place, rescaling the virtual part.

    Mirrors the scalar rule ``if rate > cap > 0``: entries with a zero cap
    are never clipped (they already receive no seed share).
    """
    over = (rate > caps) & (caps > 0)
    if np.any(over):
        scale = caps[over] / rate[over]
        rate_from_virtual[over] *= scale
        rate[over] = caps[over]


class SwarmGroup:
    """One torrent: swarms for each published file plus seed bookkeeping.

    Parameters
    ----------
    group_id:
        Identifier (torrent index).
    file_ids:
        Files published by this torrent; one swarm each.
    eta:
        Downloader tit-for-tat efficiency.
    policy:
        Seed-placement policy (see :class:`SeedPolicy`).
    records:
        Optional ``user_id -> UserRecord`` mapping; when given, virtual-seed
        give/take is integrated into the records during advancement (the
        Adapt observable).
    """

    def __init__(
        self,
        group_id: int,
        file_ids: tuple[int, ...],
        *,
        eta: float,
        policy: SeedPolicy = SeedPolicy.SUBTORRENT,
        records: Mapping[int, UserRecord] | None = None,
    ):
        if not file_ids:
            raise ValueError("a swarm group needs at least one file")
        if not 0 < eta <= 1:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.group_id = group_id
        self.eta = eta
        self.policy = policy
        self.swarms: dict[int, Swarm] = {f: Swarm(f) for f in file_ids}
        self.records = records
        #: (per-swarm store versions, total_cap, {file_id: share}) from the
        #: last full pool pass; see :meth:`recompute_rates_all_incremental`
        self._pool_cache: tuple | None = None
        #: deferred-integration window for the pooled rate domain; under
        #: ``GLOBAL_POOL`` every member swarm aliases it so row-level hooks
        #: (:meth:`Swarm.settle_received`) see the governing integrals
        self.win = RateWindow()
        if policy is SeedPolicy.GLOBAL_POOL:
            for swarm in self.swarms.values():
                swarm.win = self.win

    # ----- membership ---------------------------------------------------------

    def _swarm(self, file_id: int) -> Swarm:
        try:
            return self.swarms[file_id]
        except KeyError:
            raise KeyError(
                f"file {file_id} is not published by group {self.group_id}"
            ) from None

    def add_downloader(self, entry: DownloadEntry) -> None:
        key = (entry.user_id, entry.file_id)
        swarm = self._swarm(entry.file_id)
        if key in swarm.downloaders:
            raise ValueError(f"duplicate download entry {key} in group {self.group_id}")
        swarm.add_entry(entry)

    def remove_downloader(self, user_id: int, file_id: int) -> DownloadEntry:
        swarm = self._swarm(file_id)
        try:
            entry = swarm.downloaders[(user_id, file_id)]
        except KeyError:
            raise KeyError(
                f"no download entry (user={user_id}, file={file_id}) "
                f"in group {self.group_id}"
            ) from None
        # the entry's deferred received-from-virtual integral leaves with it
        swarm.settle_received(entry, self.records)
        return swarm.pop_entry((user_id, file_id))

    def get_downloader(self, user_id: int, file_id: int) -> DownloadEntry:
        return self._swarm(file_id).downloaders[(user_id, file_id)]

    def add_seed(
        self,
        user_id: int,
        file_id: int,
        bandwidth: float,
        user_class: int,
        *,
        virtual: bool,
    ) -> None:
        """Attach seed bandwidth for ``user_id`` to ``file_id``'s swarm.

        Under ``GLOBAL_POOL`` the capacity is pooled anyway, but the file
        attachment is kept so population metrics can report per-swarm seed
        counts and so a policy switch is purely an allocation-math change.
        """
        if bandwidth < 0:
            raise ValueError(f"seed bandwidth must be nonnegative, got {bandwidth}")
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if user_id in table:
            raise ValueError(
                f"user {user_id} already has a {'virtual' if virtual else 'real'} "
                f"seed on file {file_id}"
            )
        table[user_id] = (bandwidth, user_class)
        if swarm._topo_state is not None:
            swarm._topo_seed_added(user_id, virtual)
        if virtual:
            # upload accounting starts now, not at swarm creation
            swarm._virtual_anchor[user_id] = swarm.virtual_busy_time

    def remove_seed(self, user_id: int, file_id: int, *, virtual: bool) -> float:
        """Detach a seed allocation; returns the bandwidth it held."""
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if virtual:
            # flush the deferred upload integral before the seed vanishes
            swarm.settle_virtual_seed(user_id, self.records)
            swarm._virtual_anchor.pop(user_id, None)
        try:
            bw, _ = table.pop(user_id)
        except KeyError:
            raise KeyError(
                f"user {user_id} has no {'virtual' if virtual else 'real'} seed "
                f"on file {file_id}"
            ) from None
        if swarm._topo_state is not None:
            swarm._topo_seed_removed(user_id, virtual)
        return bw

    def set_seed_bandwidth(
        self, user_id: int, file_id: int, bandwidth: float, *, virtual: bool
    ) -> None:
        """Adjust an existing allocation in place (Adapt rho changes)."""
        if bandwidth < 0:
            raise ValueError(f"seed bandwidth must be nonnegative, got {bandwidth}")
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if user_id not in table:
            raise KeyError(f"user {user_id} has no seed on file {file_id}")
        if virtual:
            # busy time accumulated so far was served at the old bandwidth
            swarm.settle_virtual_seed(user_id, self.records)
        _, klass = table[user_id]
        table[user_id] = (bandwidth, klass)
        if swarm._topo_state is not None:
            swarm._topo_seed_updated(user_id, virtual)

    # ----- queries --------------------------------------------------------------

    def all_entries(self) -> Iterator[DownloadEntry]:
        for swarm in self.swarms.values():
            yield from swarm.downloaders.values()

    @property
    def n_downloaders(self) -> int:
        return sum(s.n_downloaders for s in self.swarms.values())

    def total_virtual_capacity(self) -> float:
        return sum(s.virtual_seeds.total for s in self.swarms.values())

    def total_real_capacity(self) -> float:
        return sum(s.real_seeds.total for s in self.swarms.values())

    # ----- group-level lazy progress (GLOBAL_POOL path) ----------------------------

    def advance_all(self, t: float) -> None:
        """Integrate rates to ``t`` for every swarm (pool coupling).

        Virtual-seed *give* accounting differs from the swarm-local rule:
        the pool is fully utilised whenever anyone in the group downloads,
        so a virtual seed on an empty swarm still uploads -- its swarm's
        busy-time integral advances whenever the *group* is busy.  As in
        :meth:`Swarm.advance`, give/take lands in deferred accumulators,
        not directly in the user records.
        """
        group_busy = self.n_downloaders > 0
        pool_has_virtual = any(s.virtual_seeds for s in self.swarms.values())
        for swarm in self.swarms.values():
            dt = t - swarm.last_update
            if dt < -1e-9:
                raise ValueError(
                    f"cannot advance group backwards ({swarm.last_update} -> {t})"
                )
            if dt <= 0:
                swarm.last_update = t
                continue
            store = swarm.store
            n = store.n
            if n:
                remaining = store.remaining[:n]
                np.subtract(remaining, store.rate[:n] * dt, out=remaining)
                np.maximum(remaining, 0.0, out=remaining)
                if pool_has_virtual:
                    acc = store.received_virtual_acc[:n]
                    np.add(acc, store.rate_from_virtual[:n] * dt, out=acc)
            if group_busy and swarm.virtual_seeds:
                swarm.virtual_busy_time += dt
            swarm.last_update = t

    def sync_accounting(self) -> None:
        """Flush all deferred virtual give/take integrals into the records."""
        for swarm in self.swarms.values():
            swarm.sync_virtual_accounting(self.records)

    def sync_user_accounting(self, user_id: int) -> None:
        """Flush one user's deferred give/take integrals (Adapt ticks)."""
        records = self.records
        if records is None:
            return
        for swarm in self.swarms.values():
            entry = swarm.downloaders.get((user_id, swarm.file_id))
            if entry is not None:
                swarm.settle_received(entry, records)
            if user_id in swarm.virtual_seeds:
                swarm.settle_virtual_seed(user_id, records)

    def recompute_rates_all(self) -> None:
        """Refresh every entry's rate from the group-wide pool.

        As in :meth:`Swarm.recompute_rates`, rates are capped at the
        entry's download bandwidth.  The pool totals are computed once and
        each swarm's store is updated with vectorised operations.
        """
        eta = self.eta
        total_n = self.n_downloaders
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.pool.full")
            reg.inc("sim.kernel.pool.peers", total_n)
        pool_virtual = self.total_virtual_capacity()
        pool_real = self.total_real_capacity()
        pool = pool_virtual + pool_real
        if total_n <= SCALAR_KERNEL_CUTOFF:
            # scalar fast path for small pools; shares cached as lists so
            # the incremental path dispatches scalar for the same state
            caps_by_file: dict[int, list] = {}
            total_cap = 0.0
            for swarm in self.swarms.values():
                caps = swarm.store.download_cap[: swarm.store.n].tolist()
                caps_by_file[swarm.file_id] = caps
                for c in caps:
                    total_cap += c
            shares: dict[int, "list | np.ndarray"] = {}
            for swarm in self.swarms.values():
                swarm.epoch += 1
                store = swarm.store
                n = store.n
                if n == 0:
                    shares[swarm.file_id] = []
                    continue
                caps = caps_by_file[swarm.file_id]
                tft = store.tft_upload[:n].tolist()
                share = [0.0] * n
                rate_l = [0.0] * n
                rfv_l = [0.0] * n
                for i in range(n):
                    c = caps[i]
                    s = c / total_cap if total_cap > 0.0 else 0.0
                    r = eta * tft[i] + s * pool
                    rv = s * pool_virtual
                    if r > c > 0.0:
                        rv *= c / r
                        r = c
                    share[i] = s
                    rate_l[i] = r
                    rfv_l[i] = rv
                store.rate[:n] = rate_l
                store.rate_from_virtual[:n] = rfv_l
                shares[swarm.file_id] = share
            versions = tuple(s.store.version for s in self.swarms.values())
            self._pool_cache = (versions, total_cap, shares)
            return
        total_cap = 0.0
        for swarm in self.swarms.values():
            store = swarm.store
            total_cap += float(np.sum(store.download_cap[: store.n]))
        shares = {}
        for swarm in self.swarms.values():
            swarm.epoch += 1
            store = swarm.store
            n = store.n
            if n == 0:
                shares[swarm.file_id] = _EMPTY_SHARE
                continue
            caps = store.download_cap[:n]
            if total_cap > 0:
                share = caps / total_cap
            else:
                share = np.zeros(n)
            rate = eta * store.tft_upload[:n] + share * pool
            rate_from_virtual = share * pool_virtual
            _apply_download_caps(rate, rate_from_virtual, caps)
            store.rate[:n] = rate
            store.rate_from_virtual[:n] = rate_from_virtual
            shares[swarm.file_id] = share
        versions = tuple(s.store.version for s in self.swarms.values())
        self._pool_cache = (versions, total_cap, shares)

    def recompute_rates_all_incremental(
        self, entries: "list[DownloadEntry] | None" = None
    ) -> bool:
        """Pool-coupled counterpart of :meth:`Swarm.recompute_rates_incremental`.

        Reuses the per-swarm share vectors cached by the last full pass
        while every swarm's membership is unchanged.  ``entries=None``
        refreshes all rows from the O(1) pool totals; a list of entries
        rewrites just those rows.  Returns ``False`` on cache miss.
        """
        cache = self._pool_cache
        if cache is None:
            return False
        versions = tuple(s.store.version for s in self.swarms.values())
        if versions != cache[0]:
            return False
        shares = cache[2]
        pool_virtual = self.total_virtual_capacity()
        pool_real = self.total_real_capacity()
        pool = pool_virtual + pool_real
        eta = self.eta
        for swarm in self.swarms.values():
            swarm.epoch += 1
        reg = current_registry()
        if entries is not None and 4 * len(entries) > self.n_downloaders:
            entries = None  # vector pass is cheaper than many scalar rows
        rows = 0
        if entries is None:
            for swarm in self.swarms.values():
                store = swarm.store
                n = store.n
                if n == 0:
                    continue
                share = shares[swarm.file_id]
                if type(share) is list:  # small pool: the full pass was scalar
                    caps = store.download_cap[:n].tolist()
                    tft = store.tft_upload[:n].tolist()
                    rate_l = [0.0] * n
                    rfv_l = [0.0] * n
                    for i in range(n):
                        s = share[i]
                        r = eta * tft[i] + s * pool
                        rv = s * pool_virtual
                        c = caps[i]
                        if r > c > 0.0:
                            rv *= c / r
                            r = c
                        rate_l[i] = r
                        rfv_l[i] = rv
                    store.rate[:n] = rate_l
                    store.rate_from_virtual[:n] = rfv_l
                else:
                    caps = store.download_cap[:n]
                    rate = eta * store.tft_upload[:n] + share * pool
                    rate_from_virtual = share * pool_virtual
                    _apply_download_caps(rate, rate_from_virtual, caps)
                    store.rate[:n] = rate
                    store.rate_from_virtual[:n] = rate_from_virtual
                rows += n
        else:
            for entry in entries:
                swarm = self.swarms.get(entry.file_id)
                if swarm is None or entry._store is not swarm.store:
                    continue  # departed since it was marked dirty
                store = swarm.store
                i = entry._slot
                s = float(shares[entry.file_id][i])
                rate = eta * float(store.tft_upload[i]) + s * pool
                rate_from_virtual = s * pool_virtual
                cap = float(store.download_cap[i])
                if rate > cap > 0:
                    scale = cap / rate
                    rate = cap
                    rate_from_virtual *= scale
                store.rate[i] = rate
                store.rate_from_virtual[i] = rate_from_virtual
                rows += 1
        if reg.enabled:
            reg.inc("sim.kernel.pool.incremental")
            reg.inc("sim.kernel.pool.rows", rows)
        return True

    def next_completion_time(self) -> float:
        """Earliest completion over the whole group (``inf`` if none)."""
        return min(
            (s.next_completion_time() for s in self.swarms.values()),
            default=math.inf,
        )

    # ----- deferred integration (pooled rate domain) ------------------------------
    #
    # GLOBAL_POOL counterparts of the ``Swarm.win_*`` drivers: one shared
    # window governs every member swarm's rows (they all ride the same
    # ``q = pool / total_cap``).

    def win_start(self, t: float, bound: float, sync) -> bool:
        """Open a deferred window over the whole pool (see ``Swarm.win_start``)."""
        cache = self._pool_cache
        if cache is None:
            return False
        if tuple(s.store.version for s in self.swarms.values()) != cache[0]:
            return False
        total_cap = cache[1]
        sv = self.total_virtual_capacity()
        sr = self.total_real_capacity()
        if total_cap > 0.0:
            q = (sv + sr) / total_cap
            qv = sv / total_cap
        else:
            q = qv = 0.0
        eta = self.eta
        q_max = math.inf
        ratio_min = math.inf
        for swarm in self.swarms.values():
            store = swarm.store
            n = store.n
            if not n:
                continue
            caps = store.download_cap[:n]
            if float(caps.min()) <= 0.0:
                return False
            ratios = eta * (store.tft_upload[:n] / caps)
            thr = 1.0 - float(ratios.max())
            if thr < q_max:
                q_max = thr
            rmin = float(ratios.min())
            if rmin < ratio_min:
                ratio_min = rmin
        if q > q_max:
            return False
        self.win.start(
            eta=eta,
            t=t,
            q=q,
            qv=qv,
            q_max=q_max,
            ratio_min=ratio_min,
            total_cap=total_cap,
            bound=bound,
        )
        for swarm in self.swarms.values():
            swarm.store._sync = sync
        return True

    def win_accumulate(self, t: float) -> None:
        """Extend the pool window's integrals to ``t`` (before any mutation)."""
        dt = self.win.accumulate(t)
        if dt > 0.0 and self.n_downloaders:
            # pool rule (see :meth:`advance_all`): virtual seeds upload
            # whenever anyone in the group downloads
            for swarm in self.swarms.values():
                if swarm.virtual_seeds:
                    swarm.virtual_busy_time += dt

    def win_bias_attached(self, entry: DownloadEntry) -> None:
        """Pre-charge a freshly attached row (see ``Swarm.win_bias_attached``)."""
        _win_bias_row(self.win, self.swarms[entry.file_id].store, entry._slot)

    def win_refresh(self, joins: "list[DownloadEntry] | None" = None) -> bool:
        """Absorb seed/join mutations into the pool window in O(changes)."""
        win = self.win
        total_cap = win.total_cap
        sv = self.total_virtual_capacity()
        sr = self.total_real_capacity()
        if total_cap > 0.0:
            q = (sv + sr) / total_cap
            qv = sv / total_cap
        else:
            q = qv = 0.0
        if not win.refresh(q, qv, self.n_downloaders):
            return False
        if joins:
            for entry in joins:
                swarm = self.swarms.get(entry.file_id)
                if swarm is None or entry._store is not swarm.store:
                    continue  # departed again before the flush
                win.note_row(_win_join_eta(win, swarm.store, entry._slot, q))
        return True

    def win_next_completion(self) -> "tuple[float, DownloadEntry | None]":
        """Earliest completion across the pool under the open window
        (see ``Swarm.win_next_completion``)."""
        win = self.win
        best_t = math.inf
        best_entry = None
        for swarm in self.swarms.values():
            t_c, entry = _win_next_completion(win, swarm.store, win.t)
            if t_c < best_t:
                best_t = t_c
                best_entry = entry
        return best_t, best_entry

    def win_due(self, eps: float) -> "tuple[float, list[DownloadEntry], float]":
        """Rows due within ``eps`` across the pool (see ``Swarm.win_due``)."""
        win = self.win
        t_next = math.inf
        t_rest = math.inf
        due: list[DownloadEntry] = []
        for swarm in self.swarms.values():
            t_c, rows, t_r = _win_due(win, swarm.store, win.t, eps)
            if t_c < t_next:
                t_next = t_c
            if t_r < t_rest:
                t_rest = t_r
            due.extend(rows)
        return t_next, due, t_rest

    def win_complete(self, entry: DownloadEntry, records=None) -> None:
        """Retire one due row without closing the pool window."""
        swarm = self.swarms[entry.file_id]
        _win_complete_row(self.win, swarm, records or self.records, entry)
        if self.n_downloaders == 0:
            self.win.total_cap = 0.0  # resorb subtraction drift exactly

    def win_materialize(self, t: float) -> None:
        """Fold the pool window into every member store; window goes inactive.

        As with ``Swarm.win_materialize``, rates stay at their window-start
        values -- the caller must refresh them before they are read.
        """
        win = self.win
        if not win.active:
            return
        self.win_accumulate(t)
        for swarm in self.swarms.values():
            _win_fold_store(win, swarm.store)
            swarm.last_update = win.t
            swarm.store._sync = None
        win.active = False
