"""Swarms (per-file subtorrents) and swarm groups (torrents).

A :class:`Swarm` is the population sharing one file: active downloads
(:class:`~repro.sim.entities.DownloadEntry`) plus seed bandwidth
allocations.  A :class:`SwarmGroup` is the paper's *torrent*: one swarm per
file it publishes (a single-file torrent is a group of one).

Seed bandwidth placement follows the group's :class:`SeedPolicy`:

* ``SUBTORRENT`` -- seed capacity attaches to one specific swarm and serves
  only its downloaders (physically what a BitTorrent seed does; the only
  sensible policy for separate single-file torrents, and the model-faithful
  reading of MFCD where each virtual peer seeds its own file).
* ``GLOBAL_POOL`` -- all virtual-seed and real-seed capacity in the group is
  pooled and divided across *every* downloader in the group in proportion
  to download bandwidth.  This is exactly the mixing assumption of the
  paper's Eq. (5) ``S^{i,j}`` term (its denominator sums downloaders of all
  subtorrents), justified there by the randomised download order.  CMFSD
  scenarios default to it; running them under ``SUBTORRENT`` instead
  quantifies the quality of that approximation.

Progress is integrated *lazily*: rates are constant between allocation
changes, so work is only advanced when something changes.  The unit of
laziness matches the unit of rate coupling -- the whole group under
``GLOBAL_POOL`` (everyone shares the pool, so any change retouches every
rate), but a single swarm under ``SUBTORRENT`` (rates never cross swarm
boundaries).  This per-swarm fast path is what keeps large MFCD/MTCD runs
tractable: an event touches one swarm, not a 10-file torrent.

Per-peer numeric state lives in a structure-of-arrays
:class:`~repro.sim.peerstore.PeerStore` per swarm, so every kernel here --
rate recomputation, progress advancement, completion queries -- is a
handful of NumPy array operations rather than a Python loop over entries.
The neighbour-aware path builds a boolean adjacency matrix from the
tracker samples and allocates seed bandwidth with one matrix product.  The
original per-entry loops survive verbatim in :mod:`repro.sim.reference` as
the oracle the vectorised kernels are tested against.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.obs import current_registry
from repro.sim.entities import DownloadEntry, UserRecord
from repro.sim.peerstore import PeerStore

__all__ = ["SeedPolicy", "Swarm", "SwarmGroup", "WorkSnapshot"]


class SeedPolicy(enum.Enum):
    """Where seed bandwidth lands within a group (see module docstring)."""

    SUBTORRENT = "subtorrent"
    GLOBAL_POOL = "global_pool"


class _VersionedDict(dict):
    """Dict that counts its mutations, so kernels can cache derived state.

    The neighbour-aware kernel derives adjacency/connectivity matrices from
    the tracker samples and seed tables; rebuilding them is the expensive
    part, so it keys a cache on these version counters.  Values must be
    *replaced*, never mutated in place (the tracker always assigns fresh
    sets) -- in-place value mutation is invisible to the counter.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key):
        super().__delitem__(key)
        self.version += 1

    def pop(self, *args):
        result = super().pop(*args)
        self.version += 1
        return result

    def popitem(self):
        result = super().popitem()
        self.version += 1
        return result

    def clear(self):
        super().clear()
        self.version += 1

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self.version += 1

    def setdefault(self, key, default=None):
        self.version += 1
        return super().setdefault(key, default)


@dataclass(frozen=True)
class WorkSnapshot:
    """One consistent view of a swarm's remaining work and rates.

    Completion handling needs two answers -- *which entries are due* and
    *when is the next completion* -- and they must come from the same
    progress state: deriving them from live arrays at two different moments
    can mix rates from two allocation epochs (e.g. when a behaviour
    callback triggers a flush halfway through).  A snapshot copies
    ``remaining`` and ``rate`` once, records the epoch it was taken under,
    and answers every query from those frozen arrays.
    """

    epoch: int
    time: float
    entries: tuple[DownloadEntry, ...]
    remaining: np.ndarray
    rate: np.ndarray

    def etas(self) -> np.ndarray:
        """Per-entry time to completion (0 when done, ``inf`` when stalled)."""
        safe_rate = np.where(self.rate > 0, self.rate, 1.0)
        with np.errstate(over="ignore"):  # tiny rate / huge remaining -> inf is right
            return np.where(
                self.remaining <= 0,
                0.0,
                np.where(self.rate > 0, self.remaining / safe_rate, math.inf),
            )

    def next_completion_time(self) -> float:
        """Absolute time of the earliest completion (``inf`` if none)."""
        if not self.entries:
            return math.inf
        return self.time + float(np.min(self.etas()))

    def due(self, slack: float) -> list[DownloadEntry]:
        """Entries whose snapshotted remaining work is within ``slack``."""
        return [self.entries[i] for i in np.flatnonzero(self.remaining <= slack)]

    def earliest(self) -> tuple[DownloadEntry, float] | None:
        """The entry closest to completion and its eta (``None`` if empty)."""
        if not self.entries:
            return None
        etas = self.etas()
        i = int(np.argmin(etas))
        return self.entries[i], float(etas[i])


class Swarm:
    """Population of one file, with its own lazy-progress clock."""

    def __init__(self, file_id: int):
        self.file_id = file_id
        #: entry key -> active download (membership / identity view)
        self.downloaders: dict[tuple[int, int], DownloadEntry] = {}
        #: structure-of-arrays numeric state backing the entries above
        self.store = PeerStore()
        #: user id -> (bandwidth, user class), seeds that finished everything
        self.real_seeds: dict[int, tuple[float, int]] = _VersionedDict()
        #: user id -> (bandwidth, user class), partial seeds (CMFSD)
        self.virtual_seeds: dict[int, tuple[float, int]] = _VersionedDict()
        #: time up to which this swarm's progress has been integrated
        self.last_update = 0.0
        #: bumped whenever rates change; completion events carry the epoch
        #: they were planned under so stale ones can be recognised
        self.epoch = 0
        #: tracker-sampled neighbour sets per user (empty dict = full mesh)
        self._neighbors: _VersionedDict = _VersionedDict()
        #: when True, rates only flow along neighbour connections
        self.neighbor_aware = False
        #: (versions) -> topology-derived kernel state; see
        #: :meth:`_neighbor_topology`
        self._topology_cache: tuple | None = None

    @property
    def neighbors(self) -> dict[int, set[int]]:
        return self._neighbors

    @neighbors.setter
    def neighbors(self, value: Mapping[int, set[int]]) -> None:
        # wholesale replacement (tests, scenario setup) gets a fresh counter
        self._neighbors = _VersionedDict(value)

    # ----- membership (store + dict kept in lockstep) ---------------------------

    def add_entry(self, entry: DownloadEntry) -> None:
        """Insert an entry: dict membership plus a store row, atomically."""
        self.downloaders[(entry.user_id, entry.file_id)] = entry
        self.store.attach(entry)

    def pop_entry(self, key: tuple[int, int]) -> DownloadEntry:
        """Remove and detach an entry (raises ``KeyError`` when absent)."""
        entry = self.downloaders.pop(key)
        self.store.detach(entry)
        return entry

    @property
    def n_downloaders(self) -> int:
        return len(self.downloaders)

    @property
    def real_capacity(self) -> float:
        return sum(bw for bw, _ in self.real_seeds.values())

    @property
    def virtual_capacity(self) -> float:
        return sum(bw for bw, _ in self.virtual_seeds.values())

    def downloader_count_by_class(self, num_classes: int) -> np.ndarray:
        """Vector of downloader counts indexed by user class (1..K)."""
        classes = self.store.column("user_class")
        return np.bincount(classes - 1, minlength=num_classes)[:num_classes].astype(
            float
        )

    def seed_count_by_class(self, num_classes: int) -> np.ndarray:
        """Vector of *real* seed counts indexed by user class (1..K)."""
        counts = np.zeros(num_classes, dtype=float)
        for _bw, klass in self.real_seeds.values():
            counts[klass - 1] += 1
        return counts

    def downloader_count_by_class_stage(self, num_classes: int) -> np.ndarray:
        """Matrix ``M[i-1, j-1]`` of downloaders by (user class, stage).

        The simulator counterpart of Eq. (5)'s ``x^{i,j}`` state (for one
        subtorrent; sum over subtorrents for the torrent-wide population).
        """
        classes = self.store.column("user_class")
        stages = self.store.column("stage")
        flat = (classes - 1) * num_classes + (stages - 1)
        return (
            np.bincount(flat, minlength=num_classes * num_classes)[
                : num_classes * num_classes
            ]
            .reshape(num_classes, num_classes)
            .astype(float)
        )

    # ----- per-swarm lazy progress (SUBTORRENT fast path) -------------------------

    def advance(self, t: float, records: Mapping[int, UserRecord] | None) -> None:
        """Integrate current rates up to ``t`` (swarm-local)."""
        dt = t - self.last_update
        if dt < -1e-9:
            raise ValueError(f"cannot advance swarm backwards ({self.last_update} -> {t})")
        if dt <= 0:
            self.last_update = t
            return
        store = self.store
        n = store.n
        if n:
            remaining = store.remaining[:n]
            np.subtract(remaining, store.rate[:n] * dt, out=remaining)
            np.maximum(remaining, 0.0, out=remaining)
            if records is not None:
                rfv = store.rate_from_virtual[:n]
                user_ids = store.user_id[:n]
                for i in np.flatnonzero(rfv > 0):
                    rec = records.get(int(user_ids[i]))
                    if rec is not None:
                        rec.received_virtual += float(rfv[i]) * dt
        if records is not None and self.downloaders:
            for user_id, (bw, _) in self.virtual_seeds.items():
                rec = records.get(user_id)
                if rec is not None:
                    rec.uploaded_virtual += bw * dt
        self.last_update = t

    def connected(self, a: int, b: int) -> bool:
        """Whether users ``a`` and ``b`` hold a connection (either sampled
        the other from the tracker; BitTorrent connections are mutual)."""
        return b in self.neighbors.get(a, ()) or a in self.neighbors.get(b, ())

    def recompute_rates(self, eta: float) -> None:
        """Refresh entry rates from swarm-local allocations.

        Rates are capped at each entry's download bandwidth (a peer cannot
        receive faster than its link); the cap only binds in drain tails
        where few downloaders face many seeds.  Under ``neighbor_aware``
        the full-mesh math is replaced by per-connection flows (see
        :meth:`_recompute_rates_neighbor_aware`).
        """
        self.epoch += 1
        reg = current_registry()
        if self.neighbor_aware:
            self._recompute_rates_neighbor_aware(eta)
            if reg.enabled:
                reg.inc("sim.kernel.neighbor.recomputes")
                reg.inc("sim.kernel.neighbor.peers", self.store.n)
            return
        if reg.enabled:
            reg.inc("sim.kernel.mesh.recomputes")
            reg.inc("sim.kernel.mesh.peers", self.store.n)
        store = self.store
        n = store.n
        if n == 0:
            return
        caps = store.column("download_cap")
        total_cap = float(np.sum(caps))
        sv = self.virtual_capacity
        sr = self.real_capacity
        if total_cap > 0:
            share = caps / total_cap
        else:
            share = np.zeros(n)
        rate = eta * store.column("tft_upload") + share * (sv + sr)
        rate_from_virtual = share * sv
        _apply_download_caps(rate, rate_from_virtual, caps)
        store.rate[:n] = rate
        store.rate_from_virtual[:n] = rate_from_virtual

    def _recompute_rates_neighbor_aware(self, eta: float) -> None:
        """Bounded-connectivity allocation as adjacency matrix + matmul.

        * Tit-for-tat returns ``eta * upload`` only to downloaders with at
          least one connected downloader partner to trade with.
        * Each seed allocation is split across the downloaders *connected
          to that seed*, proportionally to their download capacity; a seed
          with no connected downloader idles (the mixing loss the fluid
          models assume away).

        Connections are mutual, so the downloader adjacency is the
        symmetrised sample matrix; seed service is a single matrix-vector
        product of the seed-connectivity matrix against per-seed
        bandwidth-per-unit-capacity coefficients.
        """
        store = self.store
        n = store.n
        if n == 0:
            return
        caps = store.column("download_cap")
        tft = store.column("tft_upload")

        has_partner, connectivity, bandwidth, virtual_vec = self._neighbor_topology()
        rate = np.where(has_partner, eta * tft, 0.0)
        if connectivity is not None:
            reachable_cap = connectivity @ caps
            coeff = np.divide(
                bandwidth,
                reachable_cap,
                out=np.zeros(bandwidth.size),
                where=reachable_cap > 0,
            )
            rate = rate + caps * (connectivity.T @ coeff)
            rate_from_virtual = caps * (connectivity.T @ (coeff * virtual_vec))
        else:
            rate_from_virtual = np.zeros(n)
        _apply_download_caps(rate, rate_from_virtual, caps)
        store.rate[:n] = rate
        store.rate_from_virtual[:n] = rate_from_virtual

    def _neighbor_topology(self):
        """Topology-derived kernel state, cached across unchanged epochs.

        Returns ``(has_partner, connectivity, bandwidth, virtual_vec)``:
        which downloaders have a connected downloader partner, the
        seed-allocation x downloader-slot connectivity matrix (``None``
        when no seed has positive bandwidth), per-allocation bandwidths
        and a 0/1 virtual-allocation indicator.

        Everything here depends only on membership (store slots), the
        tracker samples and the seed tables -- not on capacities or
        progress -- so it is cached and rebuilt only when one of those
        version counters moves.  In the event-driven simulator a rate
        recompute usually *follows* a membership change (cache miss), but
        repeated recomputes between topology changes (eta sweeps, pool
        re-flushes, benchmarks) hit the cache and reduce to two
        matrix-vector products.
        """
        neighbors = self._neighbors
        versions = (
            neighbors.version,
            self.store.version,
            self.virtual_seeds.version,
            self.real_seeds.version,
        )
        if self._topology_cache is not None and self._topology_cache[0] == versions:
            return self._topology_cache[1]

        store = self.store
        n = store.n
        user_ids = store.column("user_id")

        # Flatten the tracker samples into one (src, dst) edge array; all
        # subsequent id -> slot mapping is vectorised (searchsorted), which
        # is what keeps this kernel ahead of the scalar loop -- per-edge
        # Python dict lookups would dominate the matmul.
        if neighbors:
            keys = np.fromiter(neighbors.keys(), dtype=np.int64, count=len(neighbors))
            degrees = np.fromiter(
                (len(s) for s in neighbors.values()),
                dtype=np.int64,
                count=len(neighbors),
            )
            n_edges = int(degrees.sum())
            dst = np.fromiter(
                (u for s in neighbors.values() for u in s),
                dtype=np.int64,
                count=n_edges,
            )
            src = np.repeat(keys, degrees)
        else:
            src = dst = np.empty(0, dtype=np.int64)

        slot_order = np.argsort(user_ids, kind="stable")
        sorted_ids = user_ids[slot_order]

        def to_slot(ids: np.ndarray) -> np.ndarray:
            """Downloader slot of each user id (-1 when not a downloader)."""
            pos = np.minimum(np.searchsorted(sorted_ids, ids), n - 1)
            return np.where(sorted_ids[pos] == ids, slot_order[pos], -1)

        src_slot = to_slot(src)
        dst_slot = to_slot(dst)

        adjacency = np.zeros((n, n), dtype=bool)
        both = (src_slot >= 0) & (dst_slot >= 0)
        adjacency[src_slot[both], dst_slot[both]] = True
        adjacency |= adjacency.T
        np.fill_diagonal(adjacency, False)
        has_partner = adjacency.any(axis=1)

        seeds = [
            (seed_user, bw, virtual)
            for virtual, table in ((True, self.virtual_seeds), (False, self.real_seeds))
            for seed_user, (bw, _) in table.items()
            if bw > 0
        ]
        if seeds:
            seed_ids = np.array([s for s, _, _ in seeds], dtype=np.int64)
            # A user may hold a virtual and a real seed at once; connection
            # rows are per *user*, then expanded back to per-allocation.
            unique_ids, inverse = np.unique(seed_ids, return_inverse=True)

            def to_seed_row(ids: np.ndarray) -> np.ndarray:
                if ids.size == 0:
                    return np.empty(0, dtype=np.int64)
                pos = np.minimum(
                    np.searchsorted(unique_ids, ids), unique_ids.size - 1
                )
                return np.where(unique_ids[pos] == ids, pos, -1)

            reach = np.zeros((unique_ids.size, n))
            # downloader sampled the seed (src is a slot, dst is a seed)
            seed_of_dst = to_seed_row(dst)
            hit = (src_slot >= 0) & (seed_of_dst >= 0)
            reach[seed_of_dst[hit], src_slot[hit]] = 1.0
            # seed sampled the downloader (src is a seed, dst is a slot)
            seed_of_src = to_seed_row(src)
            hit = (seed_of_src >= 0) & (dst_slot >= 0)
            reach[seed_of_src[hit], dst_slot[hit]] = 1.0
            connectivity = reach[inverse]
            bandwidth = np.array([bw for _, bw, _ in seeds])
            virtual_vec = np.array([float(v) for *_, v in seeds])
        else:
            connectivity = bandwidth = virtual_vec = None

        topology = (has_partner, connectivity, bandwidth, virtual_vec)
        self._topology_cache = (versions, topology)
        return topology

    # ----- completion queries (one shared snapshot) -----------------------------

    def work_snapshot(self) -> WorkSnapshot:
        """Freeze (entries, remaining, rate) under the current epoch."""
        store = self.store
        n = store.n
        return WorkSnapshot(
            epoch=self.epoch,
            time=self.last_update,
            entries=tuple(store.entries),
            remaining=store.remaining[:n].copy(),
            rate=store.rate[:n].copy(),
        )

    def next_completion_time(self) -> float:
        """Absolute time of the earliest completion (``inf`` if none)."""
        store = self.store
        n = store.n
        if n == 0:
            return math.inf
        remaining = store.remaining[:n]
        rate = store.rate[:n]
        safe_rate = np.where(rate > 0, rate, 1.0)
        with np.errstate(over="ignore"):  # tiny rate / huge remaining -> inf is right
            etas = np.where(
                remaining <= 0,
                0.0,
                np.where(rate > 0, remaining / safe_rate, math.inf),
            )
        return self.last_update + float(np.min(etas))

    def due_entries(self, slack: float) -> list[DownloadEntry]:
        store = self.store
        remaining = store.remaining[: store.n]
        return [store.entries[i] for i in np.flatnonzero(remaining <= slack)]


def _apply_download_caps(
    rate: np.ndarray, rate_from_virtual: np.ndarray, caps: np.ndarray
) -> None:
    """Clip rates at the download link in place, rescaling the virtual part.

    Mirrors the scalar rule ``if rate > cap > 0``: entries with a zero cap
    are never clipped (they already receive no seed share).
    """
    over = (rate > caps) & (caps > 0)
    if np.any(over):
        scale = caps[over] / rate[over]
        rate_from_virtual[over] *= scale
        rate[over] = caps[over]


class SwarmGroup:
    """One torrent: swarms for each published file plus seed bookkeeping.

    Parameters
    ----------
    group_id:
        Identifier (torrent index).
    file_ids:
        Files published by this torrent; one swarm each.
    eta:
        Downloader tit-for-tat efficiency.
    policy:
        Seed-placement policy (see :class:`SeedPolicy`).
    records:
        Optional ``user_id -> UserRecord`` mapping; when given, virtual-seed
        give/take is integrated into the records during advancement (the
        Adapt observable).
    """

    def __init__(
        self,
        group_id: int,
        file_ids: tuple[int, ...],
        *,
        eta: float,
        policy: SeedPolicy = SeedPolicy.SUBTORRENT,
        records: Mapping[int, UserRecord] | None = None,
    ):
        if not file_ids:
            raise ValueError("a swarm group needs at least one file")
        if not 0 < eta <= 1:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.group_id = group_id
        self.eta = eta
        self.policy = policy
        self.swarms: dict[int, Swarm] = {f: Swarm(f) for f in file_ids}
        self.records = records

    # ----- membership ---------------------------------------------------------

    def _swarm(self, file_id: int) -> Swarm:
        try:
            return self.swarms[file_id]
        except KeyError:
            raise KeyError(
                f"file {file_id} is not published by group {self.group_id}"
            ) from None

    def add_downloader(self, entry: DownloadEntry) -> None:
        key = (entry.user_id, entry.file_id)
        swarm = self._swarm(entry.file_id)
        if key in swarm.downloaders:
            raise ValueError(f"duplicate download entry {key} in group {self.group_id}")
        swarm.add_entry(entry)

    def remove_downloader(self, user_id: int, file_id: int) -> DownloadEntry:
        swarm = self._swarm(file_id)
        try:
            return swarm.pop_entry((user_id, file_id))
        except KeyError:
            raise KeyError(
                f"no download entry (user={user_id}, file={file_id}) "
                f"in group {self.group_id}"
            ) from None

    def get_downloader(self, user_id: int, file_id: int) -> DownloadEntry:
        return self._swarm(file_id).downloaders[(user_id, file_id)]

    def add_seed(
        self,
        user_id: int,
        file_id: int,
        bandwidth: float,
        user_class: int,
        *,
        virtual: bool,
    ) -> None:
        """Attach seed bandwidth for ``user_id`` to ``file_id``'s swarm.

        Under ``GLOBAL_POOL`` the capacity is pooled anyway, but the file
        attachment is kept so population metrics can report per-swarm seed
        counts and so a policy switch is purely an allocation-math change.
        """
        if bandwidth < 0:
            raise ValueError(f"seed bandwidth must be nonnegative, got {bandwidth}")
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if user_id in table:
            raise ValueError(
                f"user {user_id} already has a {'virtual' if virtual else 'real'} "
                f"seed on file {file_id}"
            )
        table[user_id] = (bandwidth, user_class)

    def remove_seed(self, user_id: int, file_id: int, *, virtual: bool) -> float:
        """Detach a seed allocation; returns the bandwidth it held."""
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        try:
            bw, _ = table.pop(user_id)
        except KeyError:
            raise KeyError(
                f"user {user_id} has no {'virtual' if virtual else 'real'} seed "
                f"on file {file_id}"
            ) from None
        return bw

    def set_seed_bandwidth(
        self, user_id: int, file_id: int, bandwidth: float, *, virtual: bool
    ) -> None:
        """Adjust an existing allocation in place (Adapt rho changes)."""
        if bandwidth < 0:
            raise ValueError(f"seed bandwidth must be nonnegative, got {bandwidth}")
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if user_id not in table:
            raise KeyError(f"user {user_id} has no seed on file {file_id}")
        _, klass = table[user_id]
        table[user_id] = (bandwidth, klass)

    # ----- queries --------------------------------------------------------------

    def all_entries(self) -> Iterator[DownloadEntry]:
        for swarm in self.swarms.values():
            yield from swarm.downloaders.values()

    @property
    def n_downloaders(self) -> int:
        return sum(s.n_downloaders for s in self.swarms.values())

    def total_virtual_capacity(self) -> float:
        return sum(s.virtual_capacity for s in self.swarms.values())

    def total_real_capacity(self) -> float:
        return sum(s.real_capacity for s in self.swarms.values())

    # ----- group-level lazy progress (GLOBAL_POOL path) ----------------------------

    def advance_all(self, t: float) -> None:
        """Integrate rates to ``t`` for every swarm (pool coupling).

        Virtual-seed *give* accounting differs from the swarm-local rule:
        the pool is fully utilised whenever anyone in the group downloads,
        so a virtual seed on an empty swarm still contributes.
        """
        records = self.records
        group_busy = self.n_downloaders > 0
        for swarm in self.swarms.values():
            dt = t - swarm.last_update
            if dt < -1e-9:
                raise ValueError(
                    f"cannot advance group backwards ({swarm.last_update} -> {t})"
                )
            if dt <= 0:
                swarm.last_update = t
                continue
            store = swarm.store
            n = store.n
            if n:
                remaining = store.remaining[:n]
                np.subtract(remaining, store.rate[:n] * dt, out=remaining)
                np.maximum(remaining, 0.0, out=remaining)
                if records is not None:
                    rfv = store.rate_from_virtual[:n]
                    user_ids = store.user_id[:n]
                    for i in np.flatnonzero(rfv > 0):
                        rec = records.get(int(user_ids[i]))
                        if rec is not None:
                            rec.received_virtual += float(rfv[i]) * dt
            if records is not None and group_busy:
                for user_id, (bw, _) in swarm.virtual_seeds.items():
                    rec = records.get(user_id)
                    if rec is not None:
                        rec.uploaded_virtual += bw * dt
            swarm.last_update = t

    def recompute_rates_all(self) -> None:
        """Refresh every entry's rate from the group-wide pool.

        As in :meth:`Swarm.recompute_rates`, rates are capped at the
        entry's download bandwidth.  The pool totals are computed once and
        each swarm's store is updated with vectorised operations.
        """
        eta = self.eta
        total_cap = 0.0
        for swarm in self.swarms.values():
            store = swarm.store
            total_cap += float(np.sum(store.download_cap[: store.n]))
        pool_virtual = self.total_virtual_capacity()
        pool_real = self.total_real_capacity()
        pool = pool_virtual + pool_real
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.kernel.pool.recomputes")
            reg.inc("sim.kernel.pool.peers", self.n_downloaders)
        for swarm in self.swarms.values():
            swarm.epoch += 1
            store = swarm.store
            n = store.n
            if n == 0:
                continue
            caps = store.column("download_cap")
            if total_cap > 0:
                share = caps / total_cap
            else:
                share = np.zeros(n)
            rate = eta * store.column("tft_upload") + share * pool
            rate_from_virtual = share * pool_virtual
            _apply_download_caps(rate, rate_from_virtual, caps)
            store.rate[:n] = rate
            store.rate_from_virtual[:n] = rate_from_virtual

    def next_completion_time(self) -> float:
        """Earliest completion over the whole group (``inf`` if none)."""
        return min(
            (s.next_completion_time() for s in self.swarms.values()),
            default=math.inf,
        )
