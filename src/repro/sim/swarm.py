"""Swarms (per-file subtorrents) and swarm groups (torrents).

A :class:`Swarm` is the population sharing one file: active downloads
(:class:`~repro.sim.entities.DownloadEntry`) plus seed bandwidth
allocations.  A :class:`SwarmGroup` is the paper's *torrent*: one swarm per
file it publishes (a single-file torrent is a group of one).

Seed bandwidth placement follows the group's :class:`SeedPolicy`:

* ``SUBTORRENT`` -- seed capacity attaches to one specific swarm and serves
  only its downloaders (physically what a BitTorrent seed does; the only
  sensible policy for separate single-file torrents, and the model-faithful
  reading of MFCD where each virtual peer seeds its own file).
* ``GLOBAL_POOL`` -- all virtual-seed and real-seed capacity in the group is
  pooled and divided across *every* downloader in the group in proportion
  to download bandwidth.  This is exactly the mixing assumption of the
  paper's Eq. (5) ``S^{i,j}`` term (its denominator sums downloaders of all
  subtorrents), justified there by the randomised download order.  CMFSD
  scenarios default to it; running them under ``SUBTORRENT`` instead
  quantifies the quality of that approximation.

Progress is integrated *lazily*: rates are constant between allocation
changes, so work is only advanced when something changes.  The unit of
laziness matches the unit of rate coupling -- the whole group under
``GLOBAL_POOL`` (everyone shares the pool, so any change retouches every
rate), but a single swarm under ``SUBTORRENT`` (rates never cross swarm
boundaries).  This per-swarm fast path is what keeps large MFCD/MTCD runs
tractable: an event touches one swarm, not a 10-file torrent.
"""

from __future__ import annotations

import enum
import math
from typing import Iterator, Mapping

import numpy as np

from repro.sim.entities import DownloadEntry, UserRecord

__all__ = ["SeedPolicy", "Swarm", "SwarmGroup"]


class SeedPolicy(enum.Enum):
    """Where seed bandwidth lands within a group (see module docstring)."""

    SUBTORRENT = "subtorrent"
    GLOBAL_POOL = "global_pool"


class Swarm:
    """Population of one file, with its own lazy-progress clock."""

    def __init__(self, file_id: int):
        self.file_id = file_id
        #: entry key -> active download
        self.downloaders: dict[tuple[int, int], DownloadEntry] = {}
        #: user id -> (bandwidth, user class), seeds that finished everything
        self.real_seeds: dict[int, tuple[float, int]] = {}
        #: user id -> (bandwidth, user class), partial seeds (CMFSD)
        self.virtual_seeds: dict[int, tuple[float, int]] = {}
        #: time up to which this swarm's progress has been integrated
        self.last_update = 0.0
        #: bumped whenever rates change; completion events carry the epoch
        #: they were planned under so stale ones can be recognised
        self.epoch = 0
        #: tracker-sampled neighbour sets per user (empty dict = full mesh)
        self.neighbors: dict[int, set[int]] = {}
        #: when True, rates only flow along neighbour connections
        self.neighbor_aware = False

    @property
    def n_downloaders(self) -> int:
        return len(self.downloaders)

    @property
    def real_capacity(self) -> float:
        return sum(bw for bw, _ in self.real_seeds.values())

    @property
    def virtual_capacity(self) -> float:
        return sum(bw for bw, _ in self.virtual_seeds.values())

    def downloader_count_by_class(self, num_classes: int) -> np.ndarray:
        """Vector of downloader counts indexed by user class (1..K)."""
        counts = np.zeros(num_classes, dtype=float)
        for entry in self.downloaders.values():
            counts[entry.user_class - 1] += 1
        return counts

    def seed_count_by_class(self, num_classes: int) -> np.ndarray:
        """Vector of *real* seed counts indexed by user class (1..K)."""
        counts = np.zeros(num_classes, dtype=float)
        for _bw, klass in self.real_seeds.values():
            counts[klass - 1] += 1
        return counts

    def downloader_count_by_class_stage(self, num_classes: int) -> np.ndarray:
        """Matrix ``M[i-1, j-1]`` of downloaders by (user class, stage).

        The simulator counterpart of Eq. (5)'s ``x^{i,j}`` state (for one
        subtorrent; sum over subtorrents for the torrent-wide population).
        """
        counts = np.zeros((num_classes, num_classes), dtype=float)
        for entry in self.downloaders.values():
            counts[entry.user_class - 1, entry.stage - 1] += 1
        return counts

    # ----- per-swarm lazy progress (SUBTORRENT fast path) -------------------------

    def advance(self, t: float, records: Mapping[int, UserRecord] | None) -> None:
        """Integrate current rates up to ``t`` (swarm-local)."""
        dt = t - self.last_update
        if dt < -1e-9:
            raise ValueError(f"cannot advance swarm backwards ({self.last_update} -> {t})")
        if dt <= 0:
            self.last_update = t
            return
        for entry in self.downloaders.values():
            entry.remaining = max(0.0, entry.remaining - entry.rate * dt)
            if records is not None and entry.rate_from_virtual > 0:
                rec = records.get(entry.user_id)
                if rec is not None:
                    rec.received_virtual += entry.rate_from_virtual * dt
        if records is not None and self.downloaders:
            for user_id, (bw, _) in self.virtual_seeds.items():
                rec = records.get(user_id)
                if rec is not None:
                    rec.uploaded_virtual += bw * dt
        self.last_update = t

    def connected(self, a: int, b: int) -> bool:
        """Whether users ``a`` and ``b`` hold a connection (either sampled
        the other from the tracker; BitTorrent connections are mutual)."""
        return b in self.neighbors.get(a, ()) or a in self.neighbors.get(b, ())

    def recompute_rates(self, eta: float) -> None:
        """Refresh entry rates from swarm-local allocations.

        Rates are capped at each entry's download bandwidth (a peer cannot
        receive faster than its link); the cap only binds in drain tails
        where few downloaders face many seeds.  Under ``neighbor_aware``
        the full-mesh math is replaced by per-connection flows (see
        :meth:`_recompute_rates_neighbor_aware`).
        """
        self.epoch += 1
        if self.neighbor_aware:
            self._recompute_rates_neighbor_aware(eta)
            return
        entries = self.downloaders.values()
        total_cap = sum(e.download_cap for e in entries)
        sv = self.virtual_capacity
        sr = self.real_capacity
        for entry in entries:
            share = entry.download_cap / total_cap if total_cap > 0 else 0.0
            rate = eta * entry.tft_upload + share * (sv + sr)
            if rate > entry.download_cap > 0:
                scale = entry.download_cap / rate
                entry.rate = entry.download_cap
                entry.rate_from_virtual = share * sv * scale
            else:
                entry.rate = rate
                entry.rate_from_virtual = share * sv

    def _recompute_rates_neighbor_aware(self, eta: float) -> None:
        """Bounded-connectivity allocation.

        * Tit-for-tat returns ``eta * upload`` only to downloaders with at
          least one connected downloader partner to trade with.
        * Each seed allocation is split across the downloaders *connected
          to that seed*, proportionally to their download capacity; a seed
          with no connected downloader idles (the mixing loss the fluid
          models assume away).
        """
        entries = list(self.downloaders.values())
        for entry in entries:
            has_partner = any(
                self.connected(entry.user_id, other.user_id)
                for other in entries
                if other.user_id != entry.user_id
            )
            entry.rate = eta * entry.tft_upload if has_partner else 0.0
            entry.rate_from_virtual = 0.0
        for virtual, table in ((True, self.virtual_seeds), (False, self.real_seeds)):
            for seed_user, (bw, _) in table.items():
                if bw <= 0:
                    continue
                receivers = [
                    e for e in entries if self.connected(seed_user, e.user_id)
                ]
                total_cap = sum(e.download_cap for e in receivers)
                if total_cap <= 0:
                    continue
                for e in receivers:
                    share = e.download_cap / total_cap * bw
                    e.rate += share
                    if virtual:
                        e.rate_from_virtual += share
        for entry in entries:
            if entry.rate > entry.download_cap > 0:
                scale = entry.download_cap / entry.rate
                entry.rate = entry.download_cap
                entry.rate_from_virtual *= scale

    def next_completion_time(self) -> float:
        """Absolute time of the earliest completion (``inf`` if none)."""
        eta = math.inf
        for entry in self.downloaders.values():
            eta = min(eta, entry.eta_for_completion())
        return self.last_update + eta

    def due_entries(self, slack: float) -> list[DownloadEntry]:
        return [e for e in self.downloaders.values() if e.remaining <= slack]


class SwarmGroup:
    """One torrent: swarms for each published file plus seed bookkeeping.

    Parameters
    ----------
    group_id:
        Identifier (torrent index).
    file_ids:
        Files published by this torrent; one swarm each.
    eta:
        Downloader tit-for-tat efficiency.
    policy:
        Seed-placement policy (see :class:`SeedPolicy`).
    records:
        Optional ``user_id -> UserRecord`` mapping; when given, virtual-seed
        give/take is integrated into the records during advancement (the
        Adapt observable).
    """

    def __init__(
        self,
        group_id: int,
        file_ids: tuple[int, ...],
        *,
        eta: float,
        policy: SeedPolicy = SeedPolicy.SUBTORRENT,
        records: Mapping[int, UserRecord] | None = None,
    ):
        if not file_ids:
            raise ValueError("a swarm group needs at least one file")
        if not 0 < eta <= 1:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        self.group_id = group_id
        self.eta = eta
        self.policy = policy
        self.swarms: dict[int, Swarm] = {f: Swarm(f) for f in file_ids}
        self.records = records

    # ----- membership ---------------------------------------------------------

    def _swarm(self, file_id: int) -> Swarm:
        try:
            return self.swarms[file_id]
        except KeyError:
            raise KeyError(
                f"file {file_id} is not published by group {self.group_id}"
            ) from None

    def add_downloader(self, entry: DownloadEntry) -> None:
        key = (entry.user_id, entry.file_id)
        swarm = self._swarm(entry.file_id)
        if key in swarm.downloaders:
            raise ValueError(f"duplicate download entry {key} in group {self.group_id}")
        swarm.downloaders[key] = entry

    def remove_downloader(self, user_id: int, file_id: int) -> DownloadEntry:
        swarm = self._swarm(file_id)
        try:
            return swarm.downloaders.pop((user_id, file_id))
        except KeyError:
            raise KeyError(
                f"no download entry (user={user_id}, file={file_id}) "
                f"in group {self.group_id}"
            ) from None

    def get_downloader(self, user_id: int, file_id: int) -> DownloadEntry:
        return self._swarm(file_id).downloaders[(user_id, file_id)]

    def add_seed(
        self,
        user_id: int,
        file_id: int,
        bandwidth: float,
        user_class: int,
        *,
        virtual: bool,
    ) -> None:
        """Attach seed bandwidth for ``user_id`` to ``file_id``'s swarm.

        Under ``GLOBAL_POOL`` the capacity is pooled anyway, but the file
        attachment is kept so population metrics can report per-swarm seed
        counts and so a policy switch is purely an allocation-math change.
        """
        if bandwidth < 0:
            raise ValueError(f"seed bandwidth must be nonnegative, got {bandwidth}")
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if user_id in table:
            raise ValueError(
                f"user {user_id} already has a {'virtual' if virtual else 'real'} "
                f"seed on file {file_id}"
            )
        table[user_id] = (bandwidth, user_class)

    def remove_seed(self, user_id: int, file_id: int, *, virtual: bool) -> float:
        """Detach a seed allocation; returns the bandwidth it held."""
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        try:
            bw, _ = table.pop(user_id)
        except KeyError:
            raise KeyError(
                f"user {user_id} has no {'virtual' if virtual else 'real'} seed "
                f"on file {file_id}"
            ) from None
        return bw

    def set_seed_bandwidth(
        self, user_id: int, file_id: int, bandwidth: float, *, virtual: bool
    ) -> None:
        """Adjust an existing allocation in place (Adapt rho changes)."""
        if bandwidth < 0:
            raise ValueError(f"seed bandwidth must be nonnegative, got {bandwidth}")
        swarm = self._swarm(file_id)
        table = swarm.virtual_seeds if virtual else swarm.real_seeds
        if user_id not in table:
            raise KeyError(f"user {user_id} has no seed on file {file_id}")
        _, klass = table[user_id]
        table[user_id] = (bandwidth, klass)

    # ----- queries --------------------------------------------------------------

    def all_entries(self) -> Iterator[DownloadEntry]:
        for swarm in self.swarms.values():
            yield from swarm.downloaders.values()

    @property
    def n_downloaders(self) -> int:
        return sum(s.n_downloaders for s in self.swarms.values())

    def total_virtual_capacity(self) -> float:
        return sum(s.virtual_capacity for s in self.swarms.values())

    def total_real_capacity(self) -> float:
        return sum(s.real_capacity for s in self.swarms.values())

    # ----- group-level lazy progress (GLOBAL_POOL path) ----------------------------

    def advance_all(self, t: float) -> None:
        """Integrate rates to ``t`` for every swarm (pool coupling).

        Virtual-seed *give* accounting differs from the swarm-local rule:
        the pool is fully utilised whenever anyone in the group downloads,
        so a virtual seed on an empty swarm still contributes.
        """
        records = self.records
        group_busy = self.n_downloaders > 0
        for swarm in self.swarms.values():
            dt = t - swarm.last_update
            if dt < -1e-9:
                raise ValueError(
                    f"cannot advance group backwards ({swarm.last_update} -> {t})"
                )
            if dt <= 0:
                swarm.last_update = t
                continue
            for entry in swarm.downloaders.values():
                entry.remaining = max(0.0, entry.remaining - entry.rate * dt)
                if records is not None and entry.rate_from_virtual > 0:
                    rec = records.get(entry.user_id)
                    if rec is not None:
                        rec.received_virtual += entry.rate_from_virtual * dt
            if records is not None and group_busy:
                for user_id, (bw, _) in swarm.virtual_seeds.items():
                    rec = records.get(user_id)
                    if rec is not None:
                        rec.uploaded_virtual += bw * dt
            swarm.last_update = t

    def recompute_rates_all(self) -> None:
        """Refresh every entry's rate from the group-wide pool.

        As in :meth:`Swarm.recompute_rates`, rates are capped at the
        entry's download bandwidth.
        """
        eta = self.eta
        entries = list(self.all_entries())
        total_cap = sum(e.download_cap for e in entries)
        pool_virtual = self.total_virtual_capacity()
        pool_real = self.total_real_capacity()
        for swarm in self.swarms.values():
            swarm.epoch += 1
        for entry in entries:
            share = entry.download_cap / total_cap if total_cap > 0 else 0.0
            rate = eta * entry.tft_upload + share * (pool_virtual + pool_real)
            if rate > entry.download_cap > 0:
                scale = entry.download_cap / rate
                entry.rate = entry.download_cap
                entry.rate_from_virtual = share * pool_virtual * scale
            else:
                entry.rate = rate
                entry.rate_from_virtual = share * pool_virtual

    def next_completion_time(self) -> float:
        """Earliest completion over the whole group (``inf`` if none)."""
        return min(
            (s.next_completion_time() for s in self.swarms.values()),
            default=math.inf,
        )
