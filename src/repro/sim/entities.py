"""Runtime entities and per-user measurement records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["DownloadEntry", "EntrySpan", "UserRecord"]


@dataclass
class DownloadEntry:
    """One active download: a (user, file) pair progressing through a swarm.

    Progress is tracked as *remaining work* (file size units); between
    bandwidth-changing events the download rate is constant, so the system
    advances ``remaining`` lazily whenever it refreshes a swarm group.

    Attributes
    ----------
    user_id / file_id:
        Who is downloading what.
    user_class:
        Number of files the owning user requested (the fluid model's ``i``).
    stage:
        Which file in sequence this is for the user (the fluid ``j``, 1-based;
        always 1 for concurrent schemes where entries run in parallel).
    tft_upload:
        Upload bandwidth the entry devotes to tit-for-tat in its swarm.
    download_cap:
        Download bandwidth (sets the entry's share of seed service).
    remaining:
        Work left, in file-size units.
    rate / rate_from_virtual:
        Current total download rate and the part of it attributable to
        virtual seeds (used by the Adapt give/take accounting).
    started_at:
        Simulation time the entry was created.
    """

    user_id: int
    file_id: int
    user_class: int
    stage: int
    tft_upload: float
    download_cap: float
    remaining: float
    rate: float = 0.0
    rate_from_virtual: float = 0.0
    started_at: float = 0.0

    def eta_for_completion(self) -> float:
        """Time until completion at the current rate (``inf`` when stalled)."""
        if self.remaining <= 0:
            return 0.0
        if self.rate <= 0:
            return math.inf
        return self.remaining / self.rate


@dataclass(frozen=True)
class EntrySpan:
    """Completed life of one (user, file) download, for validation metrics."""

    user_id: int
    file_id: int
    user_class: int
    stage: int
    started_at: float
    completed_at: float

    @property
    def download_time(self) -> float:
        return self.completed_at - self.started_at


@dataclass
class UserRecord:
    """Everything measured about one user across its whole visit.

    ``uploaded_virtual`` / ``received_virtual`` integrate the virtual-seed
    give/take rates (the Adapt observable); ``rho_trace`` records every
    Adapt adjustment as ``(time, rho)``.
    """

    user_id: int
    arrival_time: float
    user_class: int
    files: tuple[int, ...]
    scheme: str
    is_cheater: bool = False
    file_completions: dict[int, float] = field(default_factory=dict)
    downloads_done_time: float | None = None
    departure_time: float | None = None
    uploaded_virtual: float = 0.0
    received_virtual: float = 0.0
    rho_trace: list[tuple[float, float]] = field(default_factory=list)

    @property
    def is_departed(self) -> bool:
        return self.departure_time is not None

    @property
    def total_download_time(self) -> float:
        """Arrival to last file completion (NaN until finished)."""
        if self.downloads_done_time is None:
            return math.nan
        return self.downloads_done_time - self.arrival_time

    @property
    def total_online_time(self) -> float:
        """Arrival to final departure (NaN until departed)."""
        if self.departure_time is None:
            return math.nan
        return self.departure_time - self.arrival_time

    @property
    def download_time_per_file(self) -> float:
        return self.total_download_time / self.user_class

    @property
    def online_time_per_file(self) -> float:
        return self.total_online_time / self.user_class
