"""Runtime entities and per-user measurement records."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.peerstore import PeerStore

__all__ = ["DownloadEntry", "EntrySpan", "UserRecord"]


def _store_backed(name: str, volatile: bool = False) -> property:
    """Float attribute that lives in the owning store's arrays when attached.

    Detached entries (not yet added to a swarm, or already removed by a
    completion) keep the value in a private slot; attached entries read and
    write their :class:`~repro.sim.peerstore.PeerStore` row directly, so
    the vectorised kernels and the object API always observe one state.

    ``volatile`` marks fields whose stored value is only meaningful once
    the owning rate domain has integrated progress to *now* (``remaining``,
    ``rate``, ...).  While the domain defers integration inside a
    :class:`~repro.sim.bandwidth.RateWindow`, the store carries a ``_sync``
    callback; reading a volatile field (or writing any field) through the
    entry triggers it first, so the object API never observes deferred
    state.
    """
    private = "_" + name

    if volatile:

        def getter(self: "DownloadEntry") -> float:
            store = self._store
            if store is not None:
                if store._sync is not None:
                    store._sync()
                return float(getattr(store, name)[self._slot])
            return getattr(self, private)

    else:

        def getter(self: "DownloadEntry") -> float:
            store = self._store
            if store is not None:
                return float(getattr(store, name)[self._slot])
            return getattr(self, private)

    def setter(self: "DownloadEntry", value: float) -> None:
        store = self._store
        if store is not None:
            if store._sync is not None:
                store._sync()
            getattr(store, name)[self._slot] = value
        else:
            object.__setattr__(self, private, float(value))

    return property(getter, setter)


class DownloadEntry:
    """One active download: a (user, file) pair progressing through a swarm.

    Progress is tracked as *remaining work* (file size units); between
    bandwidth-changing events the download rate is constant, so the system
    advances ``remaining`` lazily whenever it refreshes a swarm group.

    While the entry is attached to a swarm, its mutable numeric fields
    (``tft_upload``, ``download_cap``, ``remaining``, ``rate``,
    ``rate_from_virtual``) are views into the swarm's structure-of-arrays
    :class:`~repro.sim.peerstore.PeerStore`, which is what the vectorised
    allocation kernels operate on.  Detached entries hold the values
    locally, so the object reads identically before insertion and after
    removal.

    Attributes
    ----------
    user_id / file_id:
        Who is downloading what.
    user_class:
        Number of files the owning user requested (the fluid model's ``i``).
    stage:
        Which file in sequence this is for the user (the fluid ``j``, 1-based;
        always 1 for concurrent schemes where entries run in parallel).
    tft_upload:
        Upload bandwidth the entry devotes to tit-for-tat in its swarm.
    download_cap:
        Download bandwidth (sets the entry's share of seed service).
    remaining:
        Work left, in file-size units.
    rate / rate_from_virtual:
        Current total download rate and the part of it attributable to
        virtual seeds (used by the Adapt give/take accounting).
    started_at:
        Simulation time the entry was created.
    """

    __slots__ = (
        "user_id",
        "file_id",
        "user_class",
        "stage",
        "started_at",
        "_store",
        "_slot",
        "_tft_upload",
        "_download_cap",
        "_remaining",
        "_rate",
        "_rate_from_virtual",
        "_received_virtual_acc",
    )

    def __init__(
        self,
        user_id: int,
        file_id: int,
        user_class: int,
        stage: int,
        tft_upload: float,
        download_cap: float,
        remaining: float,
        rate: float = 0.0,
        rate_from_virtual: float = 0.0,
        started_at: float = 0.0,
    ):
        self.user_id = user_id
        self.file_id = file_id
        self.user_class = user_class
        self.stage = stage
        self.started_at = started_at
        self._store: "PeerStore | None" = None
        self._slot = -1
        self._tft_upload = float(tft_upload)
        self._download_cap = float(download_cap)
        self._remaining = float(remaining)
        self._rate = float(rate)
        self._rate_from_virtual = float(rate_from_virtual)
        #: received-from-virtual bandwidth integrated since the last
        #: accounting sync (flushed into the user record, then zeroed)
        self._received_virtual_acc = 0.0

    tft_upload = _store_backed("tft_upload")
    download_cap = _store_backed("download_cap")
    remaining = _store_backed("remaining", volatile=True)
    rate = _store_backed("rate", volatile=True)
    rate_from_virtual = _store_backed("rate_from_virtual", volatile=True)
    received_virtual_acc = _store_backed("received_virtual_acc", volatile=True)

    def eta_for_completion(self) -> float:
        """Time until completion at the current rate (``inf`` when stalled)."""
        remaining = self.remaining
        if remaining <= 0:
            return 0.0
        rate = self.rate
        if rate <= 0:
            return math.inf
        return remaining / rate

    def __repr__(self) -> str:
        return (
            f"DownloadEntry(user_id={self.user_id}, file_id={self.file_id}, "
            f"user_class={self.user_class}, stage={self.stage}, "
            f"tft_upload={self.tft_upload}, download_cap={self.download_cap}, "
            f"remaining={self.remaining}, rate={self.rate}, "
            f"rate_from_virtual={self.rate_from_virtual}, "
            f"started_at={self.started_at})"
        )


@dataclass(frozen=True)
class EntrySpan:
    """Completed life of one (user, file) download, for validation metrics."""

    user_id: int
    file_id: int
    user_class: int
    stage: int
    started_at: float
    completed_at: float

    @property
    def download_time(self) -> float:
        return self.completed_at - self.started_at


@dataclass
class UserRecord:
    """Everything measured about one user across its whole visit.

    ``uploaded_virtual`` / ``received_virtual`` integrate the virtual-seed
    give/take rates (the Adapt observable); ``rho_trace`` records every
    Adapt adjustment as ``(time, rho)``.
    """

    user_id: int
    arrival_time: float
    user_class: int
    files: tuple[int, ...]
    scheme: str
    is_cheater: bool = False
    file_completions: dict[int, float] = field(default_factory=dict)
    downloads_done_time: float | None = None
    departure_time: float | None = None
    uploaded_virtual: float = 0.0
    received_virtual: float = 0.0
    rho_trace: list[tuple[float, float]] = field(default_factory=list)

    @property
    def is_departed(self) -> bool:
        return self.departure_time is not None

    @property
    def total_download_time(self) -> float:
        """Arrival to last file completion (NaN until finished)."""
        if self.downloads_done_time is None:
            return math.nan
        return self.downloads_done_time - self.arrival_time

    @property
    def total_online_time(self) -> float:
        """Arrival to final departure (NaN until departed)."""
        if self.departure_time is None:
            return math.nan
        return self.departure_time - self.arrival_time

    @property
    def download_time_per_file(self) -> float:
        return self.total_download_time / self.user_class

    @property
    def online_time_per_file(self) -> float:
        return self.total_online_time / self.user_class
