"""The simulation system: groups + engine + lazy rate maintenance.

:class:`SimulationSystem` owns the event loop, the swarm groups and the
user records, and exposes the mutation API the per-scheme behaviours call
(:meth:`start_download`, :meth:`add_seed`, ...).  Every mutation follows the
same discipline:

1. ``advance`` the affected *rate domain* to the current time under the old
   rates (progress integrates lazily -- rates are constant between
   mutations);
2. apply the mutation;
3. mark the domain dirty; a :meth:`flush` then recomputes its rates and
   refreshes its single pending *completion event*.

A rate domain is one swarm for ``SUBTORRENT`` groups (rates never couple
across swarms) and the whole group for ``GLOBAL_POOL`` (everyone shares the
seed pool).  One completion event per domain -- at the min remaining/rate
over its entries, invalidated by an epoch counter -- keeps the event queue
small and each event's work proportional to the affected population only.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.sim.engine import EventHandle, Simulator
from repro.sim.entities import DownloadEntry, EntrySpan, UserRecord
from repro.sim.metrics import MetricsCollector, PopulationSample
from repro.sim.rng import RandomStreams
from repro.sim.swarm import SeedPolicy, Swarm, SwarmGroup
from repro.sim.trace import EventKind, EventTrace
from repro.sim.tracker import AnnounceEvent, Tracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.behaviors import UserBehavior

__all__ = ["SimulationSystem"]

#: event priorities: completions resolve before arrivals at equal timestamps
#: so freed capacity is visible to the newcomer, and samplers run last.
PRIORITY_COMPLETION = 0
PRIORITY_DEFAULT = 1
PRIORITY_SAMPLER = 9

#: rate-domain key: (group_id, file_id) for swarm-local domains,
#: (group_id, None) for pool-coupled groups.
DomainKey = tuple[int, int | None]


class SimulationSystem:
    """Glue between the event engine, swarm groups and user behaviours.

    Parameters
    ----------
    mu / eta / gamma:
        Fluid parameters: peer upload bandwidth, downloader efficiency and
        seed departure rate (seed lifetimes are ``Exp(1/gamma)``).
    download_cap:
        Per-user download bandwidth.  The models are upload-constrained, so
        only its *relative* split matters (assumption 2 shares seed capacity
        proportionally); the default of ``10*mu`` keeps the "download much
        larger than upload" premise explicit.
    num_classes:
        ``K`` -- the number of files, which bounds the user class.
    rng:
        Shared random streams.
    seed_lifetime_distribution:
        How long seeds linger: ``"exponential"`` (the fluid models'
        assumption, mean ``1/gamma``), ``"fixed"`` (deterministic
        ``1/gamma``) or ``"uniform"`` (on ``[0, 2/gamma]``, same mean).
        The fluid steady states depend only on the mean, so the
        alternatives are insensitivity ablations.
    neighbor_limit:
        ``None`` (default) gives the fluid models' full-mesh mixing.  A
        finite value routes every swarm join through a
        :class:`~repro.sim.tracker.Tracker` that returns at most this many
        random peers (the protocol's ``numwant``), and service then flows
        only along sampled connections.  Only supported with
        ``SUBTORRENT`` groups (the ``GLOBAL_POOL`` policy *is* the mixing
        assumption).
    """

    def __init__(
        self,
        *,
        mu: float,
        eta: float,
        gamma: float,
        num_classes: int,
        download_cap: float | None = None,
        file_size: float = 1.0,
        rng: RandomStreams | None = None,
        seed_lifetime_distribution: str = "exponential",
        neighbor_limit: int | None = None,
        trace: "EventTrace | None" = None,
    ):
        if mu <= 0 or gamma <= 0 or file_size <= 0:
            raise ValueError("mu, gamma and file_size must be positive")
        if seed_lifetime_distribution not in ("exponential", "fixed", "uniform"):
            raise ValueError(
                "seed_lifetime_distribution must be 'exponential', 'fixed' or "
                f"'uniform', got {seed_lifetime_distribution!r}"
            )
        self.seed_lifetime_distribution = seed_lifetime_distribution
        self.mu = mu
        self.eta = eta
        self.gamma = gamma
        self.file_size = file_size
        self.download_cap = download_cap if download_cap is not None else 10.0 * mu
        self.num_classes = num_classes
        self.rng = rng if rng is not None else RandomStreams(0)
        self.sim = Simulator()
        self.metrics = MetricsCollector(num_classes=num_classes)
        self.groups: dict[int, SwarmGroup] = {}
        self.file_to_group: dict[int, int] = {}
        self.behaviors: dict[int, "UserBehavior"] = {}
        self._dirty: set[DomainKey] = set()
        self._epochs: dict[DomainKey, int] = {}
        self._completion_handles: dict[DomainKey, EventHandle] = {}
        self._next_user_id = 0
        self._completion_slack = 1e-9 * file_size
        self.tracker: Tracker | None = None
        if neighbor_limit is not None:
            self.tracker = Tracker(self.rng.misc, numwant=neighbor_limit)
        self.trace = trace

    # ----- topology -------------------------------------------------------------

    def add_group(self, file_ids: tuple[int, ...], policy: SeedPolicy) -> SwarmGroup:
        """Create a torrent publishing ``file_ids``; files are system-unique."""
        if self.tracker is not None and policy is SeedPolicy.GLOBAL_POOL:
            raise ValueError(
                "neighbor_limit requires SUBTORRENT groups: the GLOBAL_POOL "
                "policy is itself the full-mixing assumption"
            )
        group_id = len(self.groups)
        for f in file_ids:
            if f in self.file_to_group:
                raise ValueError(f"file {f} already published by another group")
        group = SwarmGroup(
            group_id,
            file_ids,
            eta=self.eta,
            policy=policy,
            records=self.metrics.records,
        )
        if self.tracker is not None:
            for swarm in group.swarms.values():
                swarm.neighbor_aware = True
        self.groups[group_id] = group
        for f in file_ids:
            self.file_to_group[f] = group_id
        return group

    def group_of_file(self, file_id: int) -> SwarmGroup:
        return self.groups[self.file_to_group[file_id]]

    def _domain_key(self, file_id: int) -> DomainKey:
        group = self.group_of_file(file_id)
        if group.policy is SeedPolicy.GLOBAL_POOL:
            return (group.group_id, None)
        return (group.group_id, file_id)

    # ----- time & randomness -------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def seed_lifetime(self) -> float:
        """Draw one seeding duration with mean ``1/gamma``."""
        mean = 1.0 / self.gamma
        if self.seed_lifetime_distribution == "fixed":
            return mean
        if self.seed_lifetime_distribution == "uniform":
            return float(self.rng.seeding.uniform(0.0, 2.0 * mean))
        return float(self.rng.seeding.exponential(mean))

    def schedule_after(
        self, delay: float, callback: Callable[[], None], *, priority: int = PRIORITY_DEFAULT
    ) -> EventHandle:
        return self.sim.schedule_after(delay, callback, priority=priority)

    # ----- user lifecycle ------------------------------------------------------------

    def spawn_user(self, behavior_factory, files: tuple[int, ...], **behavior_kwargs) -> int:
        """Create a user, its record and behaviour; behaviour starts itself."""
        from repro.sim.behaviors import UserBehavior  # local import: cycle guard

        user_id = self._next_user_id
        self._next_user_id += 1
        behavior = behavior_factory(self, user_id, files, **behavior_kwargs)
        if not isinstance(behavior, UserBehavior):
            raise TypeError(f"behavior factory produced {type(behavior)!r}")
        self.metrics.new_record(behavior.record)
        self.behaviors[user_id] = behavior
        if self.trace is not None:
            self.trace.record(self.now, EventKind.USER_ARRIVED, user_id)
        behavior.on_arrival()
        self.flush()
        return user_id

    def user_departed(self, user_id: int) -> None:
        """Record final departure and drop the behaviour."""
        record = self.metrics.records[user_id]
        if record.departure_time is not None:
            raise ValueError(f"user {user_id} departed twice")
        record.departure_time = self.now
        self.behaviors.pop(user_id, None)
        if self.trace is not None:
            self.trace.record(self.now, EventKind.USER_DEPARTED, user_id)

    # ----- tracker bookkeeping (neighbor-aware mode) -------------------------------------

    @staticmethod
    def _user_in_swarm(swarm: Swarm, user_id: int) -> bool:
        if user_id in swarm.real_seeds or user_id in swarm.virtual_seeds:
            return True
        return any(key[0] == user_id for key in swarm.downloaders)

    def _tracker_join(self, file_id: int, user_id: int, *, is_seeder: bool) -> None:
        if self.tracker is None:
            return
        swarm = self.group_of_file(file_id).swarms[file_id]
        if user_id in swarm.neighbors:
            if is_seeder:
                self.tracker.announce(user_id, file_id, AnnounceEvent.COMPLETED)
            return
        sample = self.tracker.announce(
            user_id, file_id, AnnounceEvent.STARTED, is_seeder=is_seeder
        )
        swarm.neighbors[user_id] = set(sample)

    def _tracker_leave_if_absent(self, file_id: int, user_id: int) -> None:
        if self.tracker is None:
            return
        swarm = self.group_of_file(file_id).swarms[file_id]
        if self._user_in_swarm(swarm, user_id):
            return
        if user_id in swarm.neighbors:
            del swarm.neighbors[user_id]
            self.tracker.announce(user_id, file_id, AnnounceEvent.STOPPED)

    # ----- mutations used by behaviours ------------------------------------------------

    def _touch(self, file_id: int) -> None:
        """Advance the file's rate domain to now and mark it dirty."""
        key = self._domain_key(file_id)
        group = self.groups[key[0]]
        if key[1] is None:
            group.advance_all(self.now)
        else:
            group.swarms[file_id].advance(self.now, self.metrics.records)
        self._dirty.add(key)

    def start_download(
        self,
        user_id: int,
        file_id: int,
        *,
        user_class: int,
        stage: int,
        tft_upload: float,
        download_cap: float,
    ) -> DownloadEntry:
        self._touch(file_id)
        entry = DownloadEntry(
            user_id=user_id,
            file_id=file_id,
            user_class=user_class,
            stage=stage,
            tft_upload=tft_upload,
            download_cap=download_cap,
            remaining=self.file_size,
            started_at=self.now,
        )
        self.group_of_file(file_id).add_downloader(entry)
        self._tracker_join(file_id, user_id, is_seeder=False)
        if self.trace is not None:
            self.trace.record(self.now, EventKind.DOWNLOAD_STARTED, user_id, file_id)
        return entry

    def set_tft_upload(self, user_id: int, file_id: int, tft_upload: float) -> None:
        """Change the tit-for-tat bandwidth of an active download (Adapt)."""
        self._touch(file_id)
        self.group_of_file(file_id).get_downloader(user_id, file_id).tft_upload = tft_upload

    def add_seed(
        self, user_id: int, file_id: int, bandwidth: float, user_class: int, *, virtual: bool
    ) -> None:
        self._touch(file_id)
        self.group_of_file(file_id).add_seed(
            user_id, file_id, bandwidth, user_class, virtual=virtual
        )
        self._tracker_join(file_id, user_id, is_seeder=not virtual)
        if self.trace is not None:
            self.trace.record(
                self.now, EventKind.SEED_ADDED, user_id, file_id, bandwidth
            )

    def remove_seed(self, user_id: int, file_id: int, *, virtual: bool) -> float:
        self._touch(file_id)
        bw = self.group_of_file(file_id).remove_seed(user_id, file_id, virtual=virtual)
        self._tracker_leave_if_absent(file_id, user_id)
        if self.trace is not None:
            self.trace.record(self.now, EventKind.SEED_REMOVED, user_id, file_id, bw)
        return bw

    def set_seed_bandwidth(
        self, user_id: int, file_id: int, bandwidth: float, *, virtual: bool
    ) -> None:
        self._touch(file_id)
        self.group_of_file(file_id).set_seed_bandwidth(
            user_id, file_id, bandwidth, virtual=virtual
        )

    # ----- rate maintenance -----------------------------------------------------------

    def flush(self) -> None:
        """Recompute rates of dirty domains and refresh completion events."""
        while self._dirty:
            key = self._dirty.pop()
            group = self.groups[key[0]]
            if key[1] is None:
                group.advance_all(self.now)
                group.recompute_rates_all()
                t_next = group.next_completion_time()
            else:
                swarm = group.swarms[key[1]]
                swarm.advance(self.now, self.metrics.records)
                swarm.recompute_rates(self.eta)
                t_next = swarm.next_completion_time()
            self._reschedule_completion(key, t_next)

    def _reschedule_completion(self, key: DomainKey, t_next: float) -> None:
        handle = self._completion_handles.pop(key, None)
        if handle is not None:
            self.sim.cancel(handle)
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        if not math.isfinite(t_next):
            return
        self._completion_handles[key] = self.sim.schedule_at(
            max(self.now, t_next),
            lambda: self._on_completion(key, epoch),
            priority=PRIORITY_COMPLETION,
        )

    def _domain_swarms(self, key: DomainKey) -> list[Swarm]:
        group = self.groups[key[0]]
        if key[1] is None:
            return list(group.swarms.values())
        return [group.swarms[key[1]]]

    def _on_completion(self, key: DomainKey, epoch: int) -> None:
        if self._epochs.get(key) != epoch:
            return  # a mutation re-planned this domain since scheduling
        self._completion_handles.pop(key, None)
        group = self.groups[key[0]]
        if key[1] is None:
            group.advance_all(self.now)
        else:
            group.swarms[key[1]].advance(self.now, self.metrics.records)
        # One snapshot per swarm: both the due set and the fallback
        # candidate must be judged against the *same* (remaining, rate)
        # state, or a flush sneaking in between the two reads could mix
        # rates from two allocation epochs.
        snapshots = [s.work_snapshot() for s in self._domain_swarms(key)]
        due: list[DownloadEntry] = []
        for snapshot in snapshots:
            due.extend(snapshot.due(self._completion_slack))
        if not due:
            # Numerical slack: the closest entry should be within float
            # error of done; force the earliest one to completion.  A
            # genuinely early wake-up (possible only through a logic bug)
            # falls back to re-planning.
            earliest = [e for s in snapshots if (e := s.earliest()) is not None]
            if not earliest:
                return
            entry, eta = min(earliest, key=lambda pair: pair[1])
            if eta > 1e-6:
                self._dirty.add(key)
                self.flush()
                return
            entry.remaining = 0.0
            due = [entry]
        for entry in due:
            group.remove_downloader(entry.user_id, entry.file_id)
            self.metrics.record_span(
                EntrySpan(
                    user_id=entry.user_id,
                    file_id=entry.file_id,
                    user_class=entry.user_class,
                    stage=entry.stage,
                    started_at=entry.started_at,
                    completed_at=self.now,
                )
            )
            record = self.metrics.records[entry.user_id]
            record.file_completions[entry.file_id] = self.now
            if self.trace is not None:
                self.trace.record(
                    self.now, EventKind.FILE_COMPLETED, entry.user_id, entry.file_id
                )
            behavior = self.behaviors.get(entry.user_id)
            if behavior is not None:
                behavior.on_file_complete(entry)
            self._tracker_leave_if_absent(entry.file_id, entry.user_id)
        self._dirty.add(key)
        self.flush()

    # ----- sampling -------------------------------------------------------------------

    def start_sampler(
        self, interval: float, t_end: float, *, record_stages: bool = False
    ) -> None:
        """Record per-swarm population snapshots every ``interval`` units.

        ``record_stages`` additionally captures the (class, stage) matrix
        per swarm -- the observable matching Eq. (5)'s ``x^{i,j}``.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        def sample() -> None:
            for group in self.groups.values():
                for file_id, swarm in group.swarms.items():
                    self.metrics.record_sample(
                        PopulationSample(
                            time=self.now,
                            group_id=group.group_id,
                            file_id=file_id,
                            downloaders=swarm.downloader_count_by_class(self.num_classes),
                            seeds=swarm.seed_count_by_class(self.num_classes),
                            stage_downloaders=(
                                swarm.downloader_count_by_class_stage(self.num_classes)
                                if record_stages
                                else None
                            ),
                        )
                    )
            if self.now + interval <= t_end:
                self.sim.schedule_after(interval, sample, priority=PRIORITY_SAMPLER)

        self.sim.schedule_after(interval, sample, priority=PRIORITY_SAMPLER)

    # ----- run ------------------------------------------------------------------------

    def run_until(self, t_end: float, *, max_events: int | None = None) -> int:
        """Drive the event loop to ``t_end``."""
        return self.sim.run_until(t_end, max_events=max_events)
