"""The simulation system: groups + engine + lazy rate maintenance.

:class:`SimulationSystem` owns the event loop, the swarm groups and the
user records, and exposes the mutation API the per-scheme behaviours call
(:meth:`start_download`, :meth:`add_seed`, ...).  Every mutation follows the
same discipline:

1. ``advance`` the affected *rate domain* to the current time under the old
   rates (progress integrates lazily -- rates are constant between
   mutations);
2. apply the mutation;
3. mark the domain dirty; a :meth:`flush` then recomputes its rates and
   refreshes its single pending *completion event*.

A rate domain is one swarm for ``SUBTORRENT`` groups (rates never couple
across swarms) and the whole group for ``GLOBAL_POOL`` (everyone shares the
seed pool).  One completion event per domain -- at the min remaining/rate
over its entries, invalidated by an epoch counter -- keeps the event queue
small and each event's work proportional to the affected population only.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.obs import current_registry
from repro.sim.engine import EventHandle, Simulator
from repro.sim.entities import DownloadEntry, EntrySpan, UserRecord
from repro.sim.metrics import MetricsCollector, PopulationSample
from repro.sim.rng import RandomStreams
from repro.sim.swarm import SeedPolicy, Swarm, SwarmGroup
from repro.sim.trace import EventKind, EventTrace
from repro.sim.tracker import AnnounceEvent, Tracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.behaviors import UserBehavior

__all__ = ["SimulationSystem"]

#: event priorities: completions resolve before arrivals at equal timestamps
#: so freed capacity is visible to the newcomer, and samplers run last.
PRIORITY_COMPLETION = 0
PRIORITY_DEFAULT = 1
PRIORITY_SAMPLER = 9

#: rate-domain key: (group_id, file_id) for swarm-local domains,
#: (group_id, None) for pool-coupled groups.
DomainKey = tuple[int, int | None]


class _DomainDirt:
    """What changed in one rate domain since its last flush.

    The flush picks the cheapest sufficient path from this record.  While
    the domain sits in a deferred :class:`~repro.sim.bandwidth.RateWindow`,
    *seed* and *join* dirt is absorbed into the window scalars in O(1);
    *entry* (tit-for-tat) and *full* dirt materialises the window first.
    On the exact path, dirty *rows* (tit-for-tat changes) rewrite just
    those entries from the cached capacity shares, dirty *seeds* or
    *joins-after-materialise* refresh every row from the O(1) seed totals,
    and ``full`` (or a join, which moves membership) falls back to the
    full kernel -- the oracle the incremental paths must match
    bit-for-bit.
    """

    __slots__ = ("full", "seeds", "entries", "joins")

    def __init__(self) -> None:
        self.full = False
        self.seeds = False
        self.entries: list[DownloadEntry] = []
        self.joins: list[DownloadEntry] = []


class SimulationSystem:
    """Glue between the event engine, swarm groups and user behaviours.

    Parameters
    ----------
    mu / eta / gamma:
        Fluid parameters: peer upload bandwidth, downloader efficiency and
        seed departure rate (seed lifetimes are ``Exp(1/gamma)``).
    download_cap:
        Per-user download bandwidth.  The models are upload-constrained, so
        only its *relative* split matters (assumption 2 shares seed capacity
        proportionally); the default of ``10*mu`` keeps the "download much
        larger than upload" premise explicit.
    num_classes:
        ``K`` -- the number of files, which bounds the user class.
    rng:
        Shared random streams.
    seed_lifetime_distribution:
        How long seeds linger: ``"exponential"`` (the fluid models'
        assumption, mean ``1/gamma``), ``"fixed"`` (deterministic
        ``1/gamma``) or ``"uniform"`` (on ``[0, 2/gamma]``, same mean).
        The fluid steady states depend only on the mean, so the
        alternatives are insensitivity ablations.
    neighbor_limit:
        ``None`` (default) gives the fluid models' full-mesh mixing.  A
        finite value routes every swarm join through a
        :class:`~repro.sim.tracker.Tracker` that returns at most this many
        random peers (the protocol's ``numwant``), and service then flows
        only along sampled connections.  Only supported with
        ``SUBTORRENT`` groups (the ``GLOBAL_POOL`` policy *is* the mixing
        assumption).
    incremental_rates:
        When ``True`` (default) flushes reuse cached capacity shares for
        seed-capacity and tit-for-tat changes, falling back to the full
        kernels on membership changes or cache misses.  ``False`` forces
        the full recompute on every flush -- the oracle mode the
        incremental-vs-full equivalence suite compares against; both
        modes produce bit-identical trajectories (the deferred-window
        layer below is common to both, so it cancels out of the
        comparison).  Also gates the incremental neighbour-topology
        state on tracker-limited swarms: ``False`` forces a full
        ``_neighbor_topology`` rebuild on every structural change (the
        forced-full oracle of the neighbour twin suite).
    incremental_dispatch:
        When ``True`` (default) :meth:`Simulator.run_until` drains events
        in batches (see ``DISPATCH_BATCH``), amortising per-event Python
        and instrumentation bookkeeping; firing order and simulation
        results are identical.  ``False`` forces the per-event dispatch
        loop -- the oracle mode the batched-vs-per-event equivalence
        suite compares against.
    deferred_integration:
        When ``True`` (default) each rate domain opens a
        :class:`~repro.sim.bandwidth.RateWindow` after every exact flush:
        seed-capacity changes and joins then update two scalars instead
        of every row, and per-row progress is only folded in at
        completion events (or when something reads an entry's progress).
        ``False`` integrates eagerly on every event -- the pre-window
        behaviour, kept for ablation and debugging.  The two settings
        agree to float-rounding (different but equally exact summation
        orders), not bit-for-bit.
    """

    def __init__(
        self,
        *,
        mu: float,
        eta: float,
        gamma: float,
        num_classes: int,
        download_cap: float | None = None,
        file_size: float = 1.0,
        rng: RandomStreams | None = None,
        seed_lifetime_distribution: str = "exponential",
        neighbor_limit: int | None = None,
        trace: "EventTrace | None" = None,
        incremental_rates: bool = True,
        incremental_dispatch: bool = True,
        deferred_integration: bool = True,
    ):
        if mu <= 0 or gamma <= 0 or file_size <= 0:
            raise ValueError("mu, gamma and file_size must be positive")
        if seed_lifetime_distribution not in ("exponential", "fixed", "uniform"):
            raise ValueError(
                "seed_lifetime_distribution must be 'exponential', 'fixed' or "
                f"'uniform', got {seed_lifetime_distribution!r}"
            )
        self.seed_lifetime_distribution = seed_lifetime_distribution
        self.mu = mu
        self.eta = eta
        self.gamma = gamma
        self.file_size = file_size
        self.download_cap = download_cap if download_cap is not None else 10.0 * mu
        self.num_classes = num_classes
        self.rng = rng if rng is not None else RandomStreams(0)
        self.sim = Simulator(incremental_dispatch=incremental_dispatch)
        self.metrics = MetricsCollector(num_classes=num_classes)
        self.groups: dict[int, SwarmGroup] = {}
        self.file_to_group: dict[int, int] = {}
        self.behaviors: dict[int, "UserBehavior"] = {}
        self._dirty: dict[DomainKey, _DomainDirt] = {}
        #: when False every flush takes the full-recompute path; the
        #: incremental-vs-full equivalence suite runs both and compares
        self.incremental_rates = incremental_rates
        #: when False progress integrates eagerly on every event (no
        #: deferred windows); see the class docstring
        self.deferred_integration = deferred_integration
        #: per-domain materialise callbacks installed as ``store._sync``
        #: while a window is open (cached: one closure per domain)
        self._sync_callbacks: dict[DomainKey, Callable[[], None]] = {}
        self._epochs: dict[DomainKey, int] = {}
        self._completion_handles: dict[DomainKey, EventHandle] = {}
        self._next_user_id = 0
        self._completion_slack = 1e-9 * file_size
        self.tracker: Tracker | None = None
        if neighbor_limit is not None:
            self.tracker = Tracker(self.rng.misc, numwant=neighbor_limit)
        self.trace = trace

    # ----- topology -------------------------------------------------------------

    def add_group(self, file_ids: tuple[int, ...], policy: SeedPolicy) -> SwarmGroup:
        """Create a torrent publishing ``file_ids``; files are system-unique."""
        if self.tracker is not None and policy is SeedPolicy.GLOBAL_POOL:
            raise ValueError(
                "neighbor_limit requires SUBTORRENT groups: the GLOBAL_POOL "
                "policy is itself the full-mixing assumption"
            )
        group_id = len(self.groups)
        for f in file_ids:
            if f in self.file_to_group:
                raise ValueError(f"file {f} already published by another group")
        group = SwarmGroup(
            group_id,
            file_ids,
            eta=self.eta,
            policy=policy,
            records=self.metrics.records,
        )
        if self.tracker is not None:
            for swarm in group.swarms.values():
                swarm.neighbor_aware = True
                # the forced-full oracle disables topology maintenance too
                swarm.topo_incremental = self.incremental_rates
        self.groups[group_id] = group
        for f in file_ids:
            self.file_to_group[f] = group_id
        return group

    def group_of_file(self, file_id: int) -> SwarmGroup:
        return self.groups[self.file_to_group[file_id]]

    def _domain_key(self, file_id: int) -> DomainKey:
        group = self.group_of_file(file_id)
        if group.policy is SeedPolicy.GLOBAL_POOL:
            return (group.group_id, None)
        return (group.group_id, file_id)

    # ----- time & randomness -------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def seed_lifetime(self) -> float:
        """Draw one seeding duration with mean ``1/gamma``."""
        mean = 1.0 / self.gamma
        if self.seed_lifetime_distribution == "fixed":
            return mean
        if self.seed_lifetime_distribution == "uniform":
            return float(self.rng.seeding.uniform(0.0, 2.0 * mean))
        return float(self.rng.seeding.exponential(mean))

    def schedule_after(
        self, delay: float, callback: Callable[[], None], *, priority: int = PRIORITY_DEFAULT
    ) -> EventHandle:
        return self.sim.schedule_after(delay, callback, priority=priority)

    # ----- user lifecycle ------------------------------------------------------------

    def spawn_user(self, behavior_factory, files: tuple[int, ...], **behavior_kwargs) -> int:
        """Create a user, its record and behaviour; behaviour starts itself."""
        from repro.sim.behaviors import UserBehavior  # local import: cycle guard

        user_id = self._next_user_id
        self._next_user_id += 1
        behavior = behavior_factory(self, user_id, files, **behavior_kwargs)
        if not isinstance(behavior, UserBehavior):
            raise TypeError(f"behavior factory produced {type(behavior)!r}")
        self.metrics.new_record(behavior.record)
        self.behaviors[user_id] = behavior
        if self.trace is not None:
            self.trace.record(self.now, EventKind.USER_ARRIVED, user_id)
        behavior.on_arrival()
        self.flush()
        return user_id

    def user_departed(self, user_id: int) -> None:
        """Record final departure and drop the behaviour."""
        record = self.metrics.records[user_id]
        if record.departure_time is not None:
            raise ValueError(f"user {user_id} departed twice")
        record.departure_time = self.now
        self.behaviors.pop(user_id, None)
        if self.trace is not None:
            self.trace.record(self.now, EventKind.USER_DEPARTED, user_id)

    # ----- tracker bookkeeping (neighbor-aware mode) -------------------------------------

    @staticmethod
    def _user_in_swarm(swarm: Swarm, user_id: int) -> bool:
        if user_id in swarm.real_seeds or user_id in swarm.virtual_seeds:
            return True
        return any(key[0] == user_id for key in swarm.downloaders)

    def _tracker_join(self, file_id: int, user_id: int, *, is_seeder: bool) -> None:
        if self.tracker is None:
            return
        swarm = self.group_of_file(file_id).swarms[file_id]
        if user_id in swarm.neighbors:
            if is_seeder:
                self.tracker.announce(user_id, file_id, AnnounceEvent.COMPLETED)
            return
        sample = self.tracker.announce(
            user_id, file_id, AnnounceEvent.STARTED, is_seeder=is_seeder
        )
        swarm.set_neighbor_sample(user_id, set(sample))

    def _tracker_leave_if_absent(self, file_id: int, user_id: int) -> None:
        if self.tracker is None:
            return
        swarm = self.group_of_file(file_id).swarms[file_id]
        if self._user_in_swarm(swarm, user_id):
            return
        if user_id in swarm.neighbors:
            swarm.drop_neighbor_sample(user_id)
            self.tracker.announce(user_id, file_id, AnnounceEvent.STOPPED)

    # ----- mutations used by behaviours ------------------------------------------------

    def _domain(self, key: DomainKey) -> "Swarm | SwarmGroup":
        """The object driving a rate domain (swarm, or group when pooled)."""
        group = self.groups[key[0]]
        return group if key[1] is None else group.swarms[key[1]]

    def _dirt(self, key: DomainKey) -> _DomainDirt:
        dirt = self._dirty.get(key)
        if dirt is None:
            dirt = self._dirty[key] = _DomainDirt()
        return dirt

    def _touch(
        self,
        file_id: int,
        *,
        entry: DownloadEntry | None = None,
        seeds: bool = False,
    ) -> None:
        """Bring the file's rate domain up to now and mark it dirty.

        The kind of dirt records *what* is about to change: a specific
        downloader row (``entry=...``, tit-for-tat change), the seed
        capacity (``seeds=True``), or -- the default -- membership, which
        needs a full recompute.  :meth:`flush` picks the kernel
        accordingly; multiple kinds accumulated between flushes degrade
        to the strongest one needed.

        While the domain holds an active deferred window, seed changes
        only extend the window's integrals here (O(1)); per-row (tft) and
        full changes break the factorised trajectory, so the window is
        materialised and -- since every row still carries its
        window-start rate -- the dirt is raised to seeds-strength to force
        an all-row refresh on the exact path.
        """
        key = self._domain_key(file_id)
        domain = self._domain(key)
        win = domain.win
        dirt = self._dirt(key)
        if win.active:
            if entry is None:
                domain.win_accumulate(self.now)
            else:
                domain.win_materialize(self.now)
                dirt.seeds = True
        if not win.active:
            if key[1] is None:
                self.groups[key[0]].advance_all(self.now)
            else:
                domain.advance(self.now)
        if entry is not None:
            dirt.entries.append(entry)
        elif seeds:
            dirt.seeds = True
        else:
            dirt.full = True

    def _mark_dirty_full(self, key: DomainKey) -> None:
        """Mark an already-advanced domain for a full recompute."""
        dirt = self._dirty.get(key)
        if dirt is None:
            dirt = self._dirty[key] = _DomainDirt()
        dirt.full = True

    def start_download(
        self,
        user_id: int,
        file_id: int,
        *,
        user_class: int,
        stage: int,
        tft_upload: float,
        download_cap: float,
    ) -> DownloadEntry:
        key = self._domain_key(file_id)
        domain = self._domain(key)
        win = domain.win
        if win.active:
            domain.win_accumulate(self.now)
        elif key[1] is None:
            self.groups[key[0]].advance_all(self.now)
        else:
            domain.advance(self.now)
        entry = DownloadEntry(
            user_id=user_id,
            file_id=file_id,
            user_class=user_class,
            stage=stage,
            tft_upload=tft_upload,
            download_cap=download_cap,
            remaining=self.file_size,
            started_at=self.now,
        )
        self.group_of_file(file_id).add_downloader(entry)
        if win.active:
            # bias the fresh row so the window's uniform fold stays exact
            domain.win_bias_attached(entry)
        self._dirt(key).joins.append(entry)
        self._tracker_join(file_id, user_id, is_seeder=False)
        if self.trace is not None:
            self.trace.record(self.now, EventKind.DOWNLOAD_STARTED, user_id, file_id)
        return entry

    def set_tft_upload(self, user_id: int, file_id: int, tft_upload: float) -> None:
        """Change the tit-for-tat bandwidth of an active download (Adapt)."""
        entry = self.group_of_file(file_id).get_downloader(user_id, file_id)
        self._touch(file_id, entry=entry)
        entry.tft_upload = tft_upload

    def add_seed(
        self, user_id: int, file_id: int, bandwidth: float, user_class: int, *, virtual: bool
    ) -> None:
        self._touch(file_id, seeds=True)
        self.group_of_file(file_id).add_seed(
            user_id, file_id, bandwidth, user_class, virtual=virtual
        )
        self._tracker_join(file_id, user_id, is_seeder=not virtual)
        if self.trace is not None:
            self.trace.record(
                self.now, EventKind.SEED_ADDED, user_id, file_id, bandwidth
            )

    def remove_seed(self, user_id: int, file_id: int, *, virtual: bool) -> float:
        self._touch(file_id, seeds=True)
        bw = self.group_of_file(file_id).remove_seed(user_id, file_id, virtual=virtual)
        self._tracker_leave_if_absent(file_id, user_id)
        if self.trace is not None:
            self.trace.record(self.now, EventKind.SEED_REMOVED, user_id, file_id, bw)
        return bw

    def set_seed_bandwidth(
        self, user_id: int, file_id: int, bandwidth: float, *, virtual: bool
    ) -> None:
        self._touch(file_id, seeds=True)
        self.group_of_file(file_id).set_seed_bandwidth(
            user_id, file_id, bandwidth, virtual=virtual
        )

    # ----- rate maintenance -----------------------------------------------------------

    def flush(self) -> None:
        """Recompute rates of dirty domains and refresh completion events.

        Mutations accumulated since the previous flush are batched into
        one pass per domain.  A domain inside an active deferred window
        whose dirt is window-compatible (seed capacity and/or joins only)
        is refreshed in O(changes): the window scalars absorb the new
        pool, the completion bound is rescaled, and the pending completion
        event is left untouched when the bound did not move.  Everything
        else takes the exact path -- materialise the window if one is
        open, advance, recompute (incremental against cached shares when
        the dirt allows it and ``incremental_rates`` is on, full
        otherwise), re-plan the completion event -- and then opens a fresh
        window at the new rates.
        """
        incremental = self.incremental_rates
        now = self.now
        reg = current_registry()
        while self._dirty:
            key, dirt = self._dirty.popitem()
            group = self.groups[key[0]]
            pooled = key[1] is None
            domain = group if pooled else group.swarms[key[1]]
            win = domain.win
            if win.active:
                if not dirt.full and not dirt.entries:
                    old_bound = win.bound
                    if domain.win_refresh(dirt.joins or None):
                        if reg.enabled:
                            reg.inc(
                                "sim.kernel.pool.incremental"
                                if pooled
                                else "sim.kernel.mesh.incremental"
                            )
                            reg.inc("sim.window.refresh")
                        if win.bound != old_bound:
                            self._reschedule_completion(key, win.bound)
                        continue
                # either the dirt breaks the factorised trajectory, or the
                # window cannot hold the new state (possible clipping,
                # stalled rows under a rising pool): fold it and re-plan
                # exactly; all rows' rates are stale, so refresh them all
                domain.win_materialize(now)
                dirt.seeds = True
            use_incremental = incremental and not dirt.full and not dirt.joins
            rows = None if dirt.seeds or dirt.joins else dirt.entries
            if pooled:
                group.advance_all(now)
                if not (
                    use_incremental
                    and group.recompute_rates_all_incremental(entries=rows)
                ):
                    group.recompute_rates_all()
                t_next = group.next_completion_time()
            else:
                swarm = domain
                swarm.advance(now)
                if not (
                    use_incremental
                    and swarm.recompute_rates_incremental(self.eta, entries=rows)
                ):
                    swarm.recompute_rates(self.eta)
                t_next = swarm.next_completion_time()
            self._reschedule_completion(key, t_next)
            if self.deferred_integration:
                self._start_window(key, domain, t_next)

    def _start_window(self, key: DomainKey, domain, bound: float) -> None:
        """Open a deferred window at just-recomputed rates (best effort)."""
        sync = self._sync_callbacks.get(key)
        if sync is None:
            sync = self._sync_callbacks[key] = self._make_sync(key)
        if key[1] is None:
            domain.win_start(self.now, bound, sync)
        else:
            domain.win_start(self.eta, self.now, bound, sync)

    def _make_sync(self, key: DomainKey) -> Callable[[], None]:
        """Materialise-on-read callback installed as the stores' ``_sync``.

        Fires when an entry's time-integrated state is read (or any field
        written) through the object API while the domain defers
        integration -- folds the window and brings rates current so the
        reader observes exactly what eager integration would have shown.
        """
        domain = self._domain(key)

        def sync() -> None:
            domain.win_materialize(self.sim.now)
            self._refresh_rates(key)
            reg = current_registry()
            if reg.enabled:
                reg.inc("sim.window.sync")

        return sync

    def _refresh_rates(self, key: DomainKey) -> None:
        """Recompute a domain's rates in place (no completion re-plan)."""
        incremental = self.incremental_rates
        if key[1] is None:
            group = self.groups[key[0]]
            if not (incremental and group.recompute_rates_all_incremental()):
                group.recompute_rates_all()
        else:
            swarm = self.groups[key[0]].swarms[key[1]]
            if not (incremental and swarm.recompute_rates_incremental(self.eta)):
                swarm.recompute_rates(self.eta)

    def materialize_all(self) -> None:
        """Fold every active deferred window and refresh its rates.

        Called at the end of :meth:`run_until` and before bulk accounting
        reads, so external observers never see deferred state.
        """
        for group in self.groups.values():
            if group.policy is SeedPolicy.GLOBAL_POOL:
                if group.win.active:
                    group.win_materialize(self.now)
                    self._refresh_rates((group.group_id, None))
                else:
                    # no window (eager mode, or win_start refused): the
                    # domain integrates on flush, so it may lag behind
                    # ``now`` since the last event -- bring it current
                    group.advance_all(self.now)
            else:
                for file_id, swarm in group.swarms.items():
                    if swarm.win.active:
                        swarm.win_materialize(self.now)
                        self._refresh_rates((group.group_id, file_id))
                    else:
                        swarm.advance(self.now)

    def _reschedule_completion(self, key: DomainKey, t_next: float) -> None:
        handle = self._completion_handles.pop(key, None)
        if handle is not None:
            self.sim.cancel(handle)
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        if not math.isfinite(t_next):
            return
        self._completion_handles[key] = self.sim.schedule_at(
            max(self.now, t_next),
            lambda: self._on_completion(key, epoch),
            priority=PRIORITY_COMPLETION,
        )

    def _domain_swarms(self, key: DomainKey) -> list[Swarm]:
        group = self.groups[key[0]]
        if key[1] is None:
            return list(group.swarms.values())
        return [group.swarms[key[1]]]

    def _on_completion(self, key: DomainKey, epoch: int) -> None:
        if self._epochs.get(key) != epoch:
            return  # a mutation re-planned this domain since scheduling
        self._completion_handles.pop(key, None)
        group = self.groups[key[0]]
        domain = self._domain(key)
        if domain.win.active:
            # The event fired at the window's conservative bound.  Judge
            # it in window space: one vector pass answers "who is actually
            # due" exactly at the current ``q``, so a stale bound (routine
            # after the pool shrank) re-plans without folding the window
            # or touching any rates -- and genuinely due rows are retired
            # by per-row folds that keep the window open for everyone else.
            domain.win_accumulate(self.now)
            t_next, due, t_rest = domain.win_due(1e-6)
            if not due:
                self._reschedule_completion(key, t_next)
                reg = current_registry()
                if reg.enabled:
                    reg.inc("sim.window.refire")
                return
            self._complete_entries_windowed(key, group, domain, due, t_rest)
            return
        if key[1] is None:
            group.advance_all(self.now)
        else:
            group.swarms[key[1]].advance(self.now)
        # One snapshot per swarm: both the due set and the fallback
        # candidate must be judged against the *same* (remaining, rate)
        # state, or a flush sneaking in between the two reads could mix
        # rates from two allocation epochs.
        snapshots = [s.work_snapshot() for s in self._domain_swarms(key)]
        due = []
        for snapshot in snapshots:
            due.extend(snapshot.due(self._completion_slack))
        if not due:
            # Numerical slack: the closest entry should be within float
            # error of done; force the earliest one to completion.  A
            # genuinely early wake-up (possible only through a logic bug
            # while windows are off) falls back to re-planning.
            earliest = [e for s in snapshots if (e := s.earliest()) is not None]
            if not earliest:
                return
            entry, eta = min(earliest, key=lambda pair: pair[1])
            if eta > 1e-6:
                self._mark_dirty_full(key)
                self.flush()
                return
            entry.remaining = 0.0
            due = [entry]
        self._complete_entries(key, group, domain, due)

    def _complete_entries(
        self,
        key: DomainKey,
        group: SwarmGroup,
        domain,
        due: list[DownloadEntry],
    ) -> None:
        """Retire due entries and re-plan the domain (rates + completion)."""
        for entry in due:
            if domain.win.active:
                # a behaviour callback below can flush() and re-open this
                # domain's window mid-loop; fold it before detaching a row
                # behind its back (zero elapsed time, so the fold is free
                # and the just-recomputed rates stay current)
                domain.win_materialize(self.now)
            group.remove_downloader(entry.user_id, entry.file_id)
            self.metrics.record_span(
                EntrySpan(
                    user_id=entry.user_id,
                    file_id=entry.file_id,
                    user_class=entry.user_class,
                    stage=entry.stage,
                    started_at=entry.started_at,
                    completed_at=self.now,
                )
            )
            record = self.metrics.records[entry.user_id]
            record.file_completions[entry.file_id] = self.now
            if self.trace is not None:
                self.trace.record(
                    self.now, EventKind.FILE_COMPLETED, entry.user_id, entry.file_id
                )
            behavior = self.behaviors.get(entry.user_id)
            if behavior is not None:
                behavior.on_file_complete(entry)
            self._tracker_leave_if_absent(entry.file_id, entry.user_id)
        self._mark_dirty_full(key)
        self.flush()

    def _complete_entries_windowed(
        self,
        key: DomainKey,
        group: SwarmGroup,
        domain,
        due: list[DownloadEntry],
        t_rest: float,
    ) -> None:
        """Retire due entries through the open window, keeping it open.

        Each row is folded and detached individually (no store-wide
        materialise, no full rate recompute); the window then absorbs the
        pool change as a seeds-strength refresh.  ``t_rest`` -- the exact
        next completion among the rows that stay, computed in the same
        pass that judged the due set -- becomes the window's bound *before*
        any mutation, so every subsequent refresh (behaviour callbacks may
        flush this domain mid-loop) rescales it conservatively.  Behaviour
        callbacks may even materialise this domain mid-loop; remaining
        rows then detach through the ordinary exact path.
        """
        records = group.records
        reg = current_registry()
        if reg.enabled:
            reg.inc("sim.window.complete", len(due))
        domain.win.bound = t_rest
        for entry in due:
            if domain.win.active:
                domain.win_complete(entry, records)
            else:
                group.remove_downloader(entry.user_id, entry.file_id)
            self.metrics.record_span(
                EntrySpan(
                    user_id=entry.user_id,
                    file_id=entry.file_id,
                    user_class=entry.user_class,
                    stage=entry.stage,
                    started_at=entry.started_at,
                    completed_at=self.now,
                )
            )
            record = self.metrics.records[entry.user_id]
            record.file_completions[entry.file_id] = self.now
            if self.trace is not None:
                self.trace.record(
                    self.now, EventKind.FILE_COMPLETED, entry.user_id, entry.file_id
                )
            behavior = self.behaviors.get(entry.user_id)
            if behavior is not None:
                behavior.on_file_complete(entry)
            self._tracker_leave_if_absent(entry.file_id, entry.user_id)
        # the departures changed the pool ratio ``q``; a seeds-strength
        # refresh absorbs that, rescaling the ``t_rest`` bound installed
        # above.  The fired event is spent, so always re-arm from the
        # post-refresh bound while the window survives (the materialise
        # fallback plans its own exact completion inside flush).
        self._dirt(key).seeds = True
        self.flush()
        win = domain.win
        if win.active:
            self._reschedule_completion(key, win.bound)

    # ----- sampling -------------------------------------------------------------------

    def start_sampler(
        self, interval: float, t_end: float, *, record_stages: bool = False
    ) -> None:
        """Record per-swarm population snapshots every ``interval`` units.

        ``record_stages`` additionally captures the (class, stage) matrix
        per swarm -- the observable matching Eq. (5)'s ``x^{i,j}``.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        def sample() -> None:
            for group in self.groups.values():
                for file_id, swarm in group.swarms.items():
                    self.metrics.record_sample(
                        PopulationSample(
                            time=self.now,
                            group_id=group.group_id,
                            file_id=file_id,
                            downloaders=swarm.downloader_count_by_class(self.num_classes),
                            seeds=swarm.seed_count_by_class(self.num_classes),
                            stage_downloaders=(
                                swarm.downloader_count_by_class_stage(self.num_classes)
                                if record_stages
                                else None
                            ),
                        )
                    )
            if self.now + interval <= t_end:
                self.sim.schedule_after(interval, sample, priority=PRIORITY_SAMPLER)

        self.sim.schedule_after(interval, sample, priority=PRIORITY_SAMPLER)

    # ----- deferred accounting --------------------------------------------------------

    def sync_accounting(self) -> None:
        """Flush deferred virtual give/take integrals into the user records.

        Progress advancement accumulates received-from-virtual bandwidth
        and virtual-seed busy time in per-swarm accumulators instead of
        walking the user records on every event; call this before reading
        ``UserRecord.uploaded_virtual`` / ``received_virtual`` in bulk
        (:func:`repro.sim.scenarios.run_scenario` does it before
        summarising).  Idempotent.
        """
        self.materialize_all()
        for group in self.groups.values():
            group.sync_accounting()

    def sync_user_accounting(self, user_id: int) -> None:
        """Flush one user's deferred give/take integrals (Adapt ticks).

        Active windows are only *accumulated* to now (not folded): the
        per-row settle hooks are window-aware, so one user's accounting
        read does not force O(rows) materialisation on every Adapt tick.
        """
        now = self.now
        for group in self.groups.values():
            if group.policy is SeedPolicy.GLOBAL_POOL:
                if group.win.active:
                    group.win_accumulate(now)
            else:
                for swarm in group.swarms.values():
                    if swarm.win.active:
                        swarm.win_accumulate(now)
            group.sync_user_accounting(user_id)

    # ----- run ------------------------------------------------------------------------

    def run_until(self, t_end: float, *, max_events: int | None = None) -> int:
        """Drive the event loop to ``t_end``; deferred state is folded on exit."""
        result = self.sim.run_until(t_end, max_events=max_events)
        self.materialize_all()
        return result
