"""Structure-of-arrays backing store for a swarm's downloader state.

The bandwidth-allocation kernels in :mod:`repro.sim.swarm` are pure array
math: every downloader contributes a download cap, a tit-for-tat upload and
a remaining-work figure, and receives back a rate.  Keeping those per-peer
scalars in Python objects forces every kernel invocation into an O(n)
attribute-chasing loop (O(n^2) for the neighbour-aware path).  The
:class:`PeerStore` keeps them in contiguous NumPy arrays instead, so the
kernels become a handful of vectorised operations.

The store is maintained *incrementally*: :meth:`attach` appends a row in
amortised O(1) (capacity doubles when full) and :meth:`detach` removes one
in O(1) by swapping the last row into the vacated slot.  Attached
:class:`~repro.sim.entities.DownloadEntry` objects become live views into
their row -- reads and writes of ``entry.rate`` etc. go straight to the
arrays -- so the scalar reference implementations, behaviours and tests
keep working unchanged on top of the same storage.  On detach the row's
values are copied back into the entry, which then behaves like a plain
record again (completion handling reads ``entry.remaining`` after removal).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.entities import DownloadEntry

__all__ = ["PeerStore"]

#: float columns mirrored between entries and the store (order matters: it
#: matches the ``DownloadEntry`` slot layout used by attach/detach).
#: ``received_virtual_acc`` is the deferred received-from-virtual-seeds
#: integral, accumulated vectorised during advances and flushed into the
#: user records by the swarm's accounting-sync methods.
FLOAT_FIELDS = (
    "tft_upload",
    "download_cap",
    "remaining",
    "rate",
    "rate_from_virtual",
    "received_virtual_acc",
)

#: static integer columns (never written back -- they are immutable on the entry)
INT_FIELDS = ("user_id", "user_class", "stage")


class PeerStore:
    """Contiguous per-peer arrays for one swarm, plus the slot -> entry map."""

    __slots__ = ("n", "version", "entries", "_sync") + FLOAT_FIELDS + INT_FIELDS

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.n = 0
        #: bumped on every attach/detach -- slot layout changed, so any
        #: slot-indexed state derived from the store must be rebuilt
        self.version = 0
        #: set while the owning rate domain defers integration (see
        #: :class:`~repro.sim.bandwidth.RateWindow`): a zero-argument
        #: callable that materialises the domain, so entry-level reads of
        #: time-integrated fields never observe deferred (biased) state
        self._sync = None
        #: slot index -> attached entry (parallel to the array rows)
        self.entries: list[DownloadEntry] = []
        for name in FLOAT_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=float))
        for name in INT_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=np.int64))

    def __len__(self) -> int:
        return self.n

    @property
    def capacity(self) -> int:
        return int(self.user_id.size)

    def column(self, name: str) -> np.ndarray:
        """Live view of the first ``n`` rows of column ``name``."""
        return getattr(self, name)[: self.n]

    def _grow(self) -> None:
        new_capacity = max(8, 2 * self.capacity)
        for name in FLOAT_FIELDS + INT_FIELDS:
            old = getattr(self, name)
            fresh = np.zeros(new_capacity, dtype=old.dtype)
            fresh[: self.n] = old[: self.n]
            setattr(self, name, fresh)

    def attach(self, entry: "DownloadEntry") -> int:
        """Adopt ``entry`` into the arrays; it becomes a view of its row."""
        if entry._store is not None:
            raise ValueError(
                f"entry (user={entry.user_id}, file={entry.file_id}) is "
                "already attached to a store"
            )
        if self.n == self.capacity:
            self._grow()
        slot = self.n
        self.tft_upload[slot] = entry._tft_upload
        self.download_cap[slot] = entry._download_cap
        self.remaining[slot] = entry._remaining
        self.rate[slot] = entry._rate
        self.rate_from_virtual[slot] = entry._rate_from_virtual
        self.received_virtual_acc[slot] = entry._received_virtual_acc
        self.user_id[slot] = entry.user_id
        self.user_class[slot] = entry.user_class
        self.stage[slot] = entry.stage
        self.entries.append(entry)
        self.n += 1
        self.version += 1
        entry._store = self
        entry._slot = slot
        return slot

    def detach(self, entry: "DownloadEntry") -> None:
        """Release ``entry`` (values copied back), swap-filling its slot."""
        if entry._store is not self:
            raise ValueError(
                f"entry (user={entry.user_id}, file={entry.file_id}) is not "
                "attached to this store"
            )
        slot = entry._slot
        entry._tft_upload = float(self.tft_upload[slot])
        entry._download_cap = float(self.download_cap[slot])
        entry._remaining = float(self.remaining[slot])
        entry._rate = float(self.rate[slot])
        entry._rate_from_virtual = float(self.rate_from_virtual[slot])
        entry._received_virtual_acc = float(self.received_virtual_acc[slot])
        entry._store = None
        entry._slot = -1
        last = self.n - 1
        if slot != last:
            moved = self.entries[last]
            self.entries[slot] = moved
            moved._slot = slot
            for name in FLOAT_FIELDS + INT_FIELDS:
                column = getattr(self, name)
                column[slot] = column[last]
        self.entries.pop()
        self.n = last
        self.version += 1
