"""Seeded, purpose-split randomness for reproducible simulations.

Each stochastic aspect of a run (arrival times, class draws, file-order
shuffles, seed lifetimes) gets its own :class:`numpy.random.Generator`
spawned from one master seed.  Splitting streams keeps scenarios comparable
under common random numbers: changing, say, the downloading scheme does not
perturb the arrival pattern.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]

_STREAM_NAMES = ("arrivals", "classes", "files", "order", "seeding", "misc")


class RandomStreams:
    """A bundle of independent named random generators.

    Attributes (all :class:`numpy.random.Generator`):
    ``arrivals`` -- inter-arrival times; ``classes`` -- user class draws;
    ``files`` -- file-subset draws; ``order`` -- sequential download order
    shuffles; ``seeding`` -- seed lifetimes; ``misc`` -- anything else.
    """

    def __init__(self, seed: int | None = 0):
        self.seed = seed
        root = np.random.SeedSequence(seed)
        children = root.spawn(len(_STREAM_NAMES))
        for name, child in zip(_STREAM_NAMES, children):
            setattr(self, name, np.random.Generator(np.random.PCG64(child)))

    arrivals: np.random.Generator
    classes: np.random.Generator
    files: np.random.Generator
    order: np.random.Generator
    seeding: np.random.Generator
    misc: np.random.Generator

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed!r})"
