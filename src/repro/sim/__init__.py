"""Flow-level discrete-event simulator of multi-file BitTorrent downloading.

The paper evaluates its fluid models purely numerically; this subpackage
supplies the peer-level system the models abstract, so that

* the fluid steady states can be cross-validated against an independent
  implementation (see :mod:`repro.experiments.validation`), and
* the Adapt mechanism and cheating behaviours -- which the paper leaves as
  future work -- can be studied at the level where they actually live.

The simulator is *flow-level*: peers exchange fluid at the rates prescribed
by the paper's Sec.-2 allocation assumptions (tit-for-tat returns a
downloader ``eta`` times its own contribution; seed capacity is split
proportionally to download bandwidth).  There are no chunk maps -- that
detail is already abstracted into ``eta`` by the paper itself.

Layering (bottom-up): :mod:`engine` (event queue) -> :mod:`swarm`
(per-file swarms, bandwidth bookkeeping) -> :mod:`system` (progress
advancement, completions) -> :mod:`behaviors` (per-scheme user state
machines) -> :mod:`scenarios` (ready-made experiment setups).
"""

from repro.sim.engine import EventQueue, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.entities import DownloadEntry, EntrySpan, UserRecord
from repro.sim.peerstore import PeerStore
from repro.sim.swarm import SeedPolicy, Swarm, SwarmGroup, WorkSnapshot
from repro.sim.trace import EventKind, EventTrace, TraceEvent
from repro.sim.tracker import AnnounceEvent, ScrapeStats, Tracker
from repro.sim.bandwidth import downloader_rates
from repro.sim.arrivals import ArrivalProcess
from repro.sim.metrics import MetricsCollector, PopulationSample, SimulationSummary
from repro.sim.system import SimulationSystem
from repro.sim.behaviors import (
    BehaviorKind,
    UserBehavior,
    make_behavior,
)
from repro.sim.adapt_runtime import AdaptRuntime
from repro.sim.scenarios import ScenarioConfig, build_simulation, run_scenario

__all__ = [
    "EventQueue",
    "Simulator",
    "RandomStreams",
    "DownloadEntry",
    "EntrySpan",
    "UserRecord",
    "PeerStore",
    "SeedPolicy",
    "Swarm",
    "SwarmGroup",
    "WorkSnapshot",
    "AnnounceEvent",
    "ScrapeStats",
    "Tracker",
    "EventKind",
    "EventTrace",
    "TraceEvent",
    "downloader_rates",
    "ArrivalProcess",
    "MetricsCollector",
    "PopulationSample",
    "SimulationSummary",
    "SimulationSystem",
    "BehaviorKind",
    "UserBehavior",
    "make_behavior",
    "AdaptRuntime",
    "ScenarioConfig",
    "build_simulation",
    "run_scenario",
]
