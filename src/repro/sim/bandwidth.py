"""Pure bandwidth-allocation math (the paper's Sec.-2 assumptions).

Kept free of simulator state so the rules are unit-testable in isolation:

* Assumption 1 (tit-for-tat): a downloader receives ``eta`` times its own
  tit-for-tat upload contribution from the downloader pool.
* Assumption 2 (altruistic seeds): aggregate seed capacity is divided among
  downloaders proportionally to their download bandwidth.

The module also hosts :class:`RateWindow`, the deferred-integration state
that lets the event-driven simulator handle rate changes in O(1): under
assumptions 1+2 every unclipped full-mesh rate factorises as

    ``rate_k = eta * tft_k + cap_k * q``   with   ``q = pool / total_cap``

so between completions the *entire* per-peer trajectory is parameterised by
the scalars ``q`` (and ``qv`` for the virtual-seed part), and integrating
progress only needs the running integrals ``B = int q dt`` /
``C = int qv dt`` plus the elapsed time.  Per-row state is materialised
(folded) only at completion events or when something actually reads it.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["RateWindow", "downloader_rates", "seed_share"]


class RateWindow:
    """Deferred-integration window for one rate domain.

    While ``active``, the store's ``remaining`` / ``received_virtual_acc``
    arrays are *frozen at window start* (plus per-row join biases) and the
    true values are implied by the accumulated integrals:

    ``remaining_k(t) = stored_k - eta*tft_k*(t - t_start) - cap_k*B``
    ``received_k(t)  = stored_k + cap_k*C``

    Rows that join mid-window are *biased* on attach (their stored values
    are pre-charged with the integrals accumulated so far) so one uniform
    vector fold materialises every row correctly, with no per-row anchors.

    Invariants the owner must maintain:

    * ``accumulate`` runs **before** any mutation (the integrals up to now
      were produced under the old ``q``/``qv``);
    * ``q <= q_max`` at all times (no row's unclipped rate may exceed its
      download cap inside a window; ``q_max`` is a conservative lower bound
      for the true clip threshold ``min_k (1 - eta*tft_k/cap_k)``);
    * ``bound`` is a lower bound on the domain's next completion time --
      the completion event fires at ``bound`` and re-plans exactly, so a
      conservative bound costs a wasted wake-up, never a wrong trajectory.
    """

    __slots__ = (
        "active",
        "eta",
        "t_start",
        "t",
        "B",
        "C",
        "q",
        "qv",
        "q_max",
        "ratio_min",
        "total_cap",
        "bound",
    )

    def __init__(self) -> None:
        self.active = False
        self.eta = 0.0
        self.t_start = 0.0
        self.t = 0.0
        self.B = 0.0
        self.C = 0.0
        self.q = 0.0
        self.qv = 0.0
        self.q_max = math.inf
        self.ratio_min = math.inf
        self.total_cap = 0.0
        self.bound = math.inf

    def start(
        self,
        *,
        eta: float,
        t: float,
        q: float,
        qv: float,
        q_max: float,
        ratio_min: float,
        total_cap: float,
        bound: float,
    ) -> None:
        self.active = True
        self.eta = eta
        self.t_start = t
        self.t = t
        self.B = 0.0
        self.C = 0.0
        self.q = q
        self.qv = qv
        self.q_max = q_max
        self.ratio_min = ratio_min
        self.total_cap = total_cap
        self.bound = bound

    def accumulate(self, t: float) -> float:
        """Extend the integrals to ``t`` under the current ``q``/``qv``.

        Returns the elapsed ``dt`` (0 for same-timestamp batches) so the
        caller can advance its busy-time integrals alongside.
        """
        dt = t - self.t
        if dt <= 0.0:
            return 0.0
        self.B += self.q * dt
        if self.qv:
            self.C += self.qv * dt
        self.t = t
        return dt

    def refresh(self, q: float, qv: float, n: int) -> bool:
        """Adopt new rate parameters after a mutation; update the bound.

        Returns ``False`` when the window cannot absorb the change (a row
        could clip, or previously stalled rows might start moving, which a
        scalar bound cannot track) -- the caller must then materialise and
        fall back to the exact per-event path.
        """
        if q > self.q_max:
            return False  # a row's unclipped rate would exceed its cap
        old = self.q
        if q > old:
            bound = self.bound
            if bound == math.inf:
                # stalled rows (rate 0) may start moving under a larger q;
                # only an empty domain keeps an infinite bound safely
                if n > 0:
                    return False
            else:
                # row ``i`` speeds up by ``(x_i + q') / (x_i + q)`` with
                # ``x_i = eta*tft_i/cap_i``, which is largest at the
                # smallest ratio -- so every completion shrinks toward now
                # by at most ``(m + q') / (m + q)``.  (With ``m = 0`` this
                # degrades to the plain ``q'/q`` factor.)
                m = self.ratio_min
                num = m + old
                if num <= 0.0:
                    self.bound = self.t  # unbounded speed-up: re-plan now
                else:
                    self.bound = self.t + (bound - self.t) * (num / (m + q))
        self.q = q
        self.qv = qv
        return True

    def note_row(self, eta_row: float) -> None:
        """Fold one row's time-to-completion into the bound (joins)."""
        if eta_row < math.inf:
            t = self.t + eta_row
            if t < self.bound:
                self.bound = t


def seed_share(download_caps: Sequence[float], capacity: float) -> np.ndarray:
    """Split ``capacity`` across downloaders proportionally to download caps.

    Returns a zero vector when there are no downloaders or no positive
    capacity weight (the capacity is then simply unused, as in a swarm with
    seeds but nobody downloading).
    """
    caps = np.asarray(download_caps, dtype=float)
    if caps.size == 0 or capacity <= 0:
        return np.zeros(caps.size)
    if np.any(caps < 0):
        raise ValueError("download capacities must be nonnegative")
    total = float(np.sum(caps))
    if total <= 0:
        return np.zeros(caps.size)
    return caps / total * capacity


def downloader_rates(
    tft_uploads: Sequence[float],
    download_caps: Sequence[float],
    *,
    eta: float,
    seed_capacity: float,
) -> np.ndarray:
    """Per-downloader service rates under both Sec.-2 assumptions.

    ``rate_k = eta * tft_uploads[k] + share_k(seed_capacity)``.
    """
    tft = np.asarray(tft_uploads, dtype=float)
    caps = np.asarray(download_caps, dtype=float)
    if tft.shape != caps.shape:
        raise ValueError("tft_uploads and download_caps must have equal length")
    if np.any(tft < 0):
        raise ValueError("tit-for-tat uploads must be nonnegative")
    if not 0 < eta <= 1:
        raise ValueError(f"eta must be in (0, 1], got {eta}")
    return eta * tft + seed_share(caps, seed_capacity)
