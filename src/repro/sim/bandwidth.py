"""Pure bandwidth-allocation math (the paper's Sec.-2 assumptions).

Kept free of simulator state so the rules are unit-testable in isolation:

* Assumption 1 (tit-for-tat): a downloader receives ``eta`` times its own
  tit-for-tat upload contribution from the downloader pool.
* Assumption 2 (altruistic seeds): aggregate seed capacity is divided among
  downloaders proportionally to their download bandwidth.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["downloader_rates", "seed_share"]


def seed_share(download_caps: Sequence[float], capacity: float) -> np.ndarray:
    """Split ``capacity`` across downloaders proportionally to download caps.

    Returns a zero vector when there are no downloaders or no positive
    capacity weight (the capacity is then simply unused, as in a swarm with
    seeds but nobody downloading).
    """
    caps = np.asarray(download_caps, dtype=float)
    if caps.size == 0 or capacity <= 0:
        return np.zeros(caps.size)
    if np.any(caps < 0):
        raise ValueError("download capacities must be nonnegative")
    total = float(np.sum(caps))
    if total <= 0:
        return np.zeros(caps.size)
    return caps / total * capacity


def downloader_rates(
    tft_uploads: Sequence[float],
    download_caps: Sequence[float],
    *,
    eta: float,
    seed_capacity: float,
) -> np.ndarray:
    """Per-downloader service rates under both Sec.-2 assumptions.

    ``rate_k = eta * tft_uploads[k] + share_k(seed_capacity)``.
    """
    tft = np.asarray(tft_uploads, dtype=float)
    caps = np.asarray(download_caps, dtype=float)
    if tft.shape != caps.shape:
        raise ValueError("tft_uploads and download_caps must have equal length")
    if np.any(tft < 0):
        raise ValueError("tit-for-tat uploads must be nonnegative")
    if not 0 < eta <= 1:
        raise ValueError(f"eta must be in (0, 1], got {eta}")
    return eta * tft + seed_share(caps, seed_capacity)
