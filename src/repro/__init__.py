"""repro -- multiple-file BitTorrent downloading: fluid models + simulator.

A production-quality reproduction of Tian, Wu & Ng, *Analyzing Multiple File
Downloading in BitTorrent* (ICPP 2006).  The package provides:

* :mod:`repro.core` -- the paper's fluid models (MTCD, MTSD, MFCD, CMFSD),
  the file-correlation workload model, and the Adapt mechanism.
* :mod:`repro.ode` -- ODE integration and steady-state numerics.
* :mod:`repro.sim` -- a flow-level discrete-event BitTorrent simulator used
  to cross-validate the fluid models and to study Adapt/cheating.
* :mod:`repro.analysis` -- statistics, Little's-law checks, tables and
  terminal plots.
* :mod:`repro.experiments` -- drivers that regenerate every figure and
  table of the paper (run ``python -m repro list``).
* :mod:`repro.service` -- a live asyncio swarm service over the simulator:
  streaming event ingestion with a deterministic record/replay journal
  (``repro-bt serve`` / ``repro-bt replay``).

Quickstart::

    from repro import PAPER_PARAMETERS, CorrelationModel, Scheme, compare_schemes

    workload = CorrelationModel(num_files=10, p=0.9)
    for scheme, metrics in compare_schemes(PAPER_PARAMETERS, workload).items():
        print(scheme.value, metrics.avg_online_time_per_file)
"""

from repro.core import (
    AdaptController,
    AdaptPolicy,
    AdaptTrace,
    CMFSDModel,
    CMFSDSteadyState,
    ClassMetrics,
    CorrelationModel,
    FluidModel,
    FluidParameters,
    HeterogeneousModel,
    MFCDModel,
    MTCDModel,
    MTSDModel,
    PAPER_PARAMETERS,
    PeerClass,
    Scheme,
    SingleTorrentModel,
    SystemMetrics,
    adapt_fixed_point,
    build_model,
    compare_schemes,
    evaluate_scheme,
)

__version__ = "1.10.0"

__all__ = [
    "AdaptController",
    "AdaptPolicy",
    "AdaptTrace",
    "CMFSDModel",
    "CMFSDSteadyState",
    "ClassMetrics",
    "CorrelationModel",
    "FluidModel",
    "FluidParameters",
    "HeterogeneousModel",
    "MFCDModel",
    "MTCDModel",
    "MTSDModel",
    "PAPER_PARAMETERS",
    "PeerClass",
    "Scheme",
    "SingleTorrentModel",
    "SystemMetrics",
    "adapt_fixed_point",
    "build_model",
    "compare_schemes",
    "evaluate_scheme",
    "__version__",
]
