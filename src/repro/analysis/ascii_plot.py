"""Dependency-free terminal plots.

The offline environment has no matplotlib, so the figure harnesses render
their reproduced curves as ASCII line plots (multiple series, distinct
markers, shared axes) and heat maps (for the Fig.-4(a) (p, rho) surface).
These are reporting aids; the numeric series themselves are also written to
CSV by the experiment drivers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_plot", "ascii_heatmap"]

_MARKERS = "ox+*#@%&"
_SHADES = " .:-=+*#%@"


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Plot one or more ``name -> (xs, ys)`` series on a shared canvas.

    Each series gets the next marker from ``oxX*#@%&``; a legend maps
    markers back to names.  NaN points are skipped.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small (need width >= 16, height >= 4)")
    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"series {name!r}: x and y lengths differ")
        mask = np.isfinite(x) & np.isfinite(y)
        cleaned[name] = (x[mask], y[mask])
    all_x = np.concatenate([v[0] for v in cleaned.values()])
    all_y = np.concatenate([v[1] for v in cleaned.values()])
    if all_x.size == 0:
        raise ValueError("no finite data points to plot")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for k, (name, (x, y)) in enumerate(cleaned.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        cols = np.round((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        rows = np.round((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_w = max(len(f"{y_hi:.4g}"), len(f"{y_lo:.4g}"))
    for r, row in enumerate(canvas):
        if r == 0:
            label = f"{y_hi:.4g}".rjust(label_w)
        elif r == height - 1:
            label = f"{y_lo:.4g}".rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 10) + f"{x_hi:.4g}".rjust(10)
    lines.append(" " * (label_w + 2) + x_axis)
    lines.append(" " * (label_w + 2) + f"({xlabel} vs {ylabel})")
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} = {name}" for k, name in enumerate(cleaned)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_heatmap(
    grid: np.ndarray,
    *,
    row_labels: Sequence[float] | None = None,
    col_labels: Sequence[float] | None = None,
    title: str | None = None,
    row_name: str = "row",
    col_name: str = "col",
) -> str:
    """Render a 2-D array as a shaded character map (dark = large).

    ``grid[r, c]`` maps row ``r`` (top to bottom) and column ``c`` (left to
    right); labels annotate the first/last row and column.
    """
    arr = np.asarray(grid, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError("grid must be a non-empty 2-D array")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ValueError("grid has no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    lines: list[str] = []
    if title:
        lines.append(title)
    n_shades = len(_SHADES)
    for r in range(arr.shape[0]):
        cells = []
        for c in range(arr.shape[1]):
            v = arr[r, c]
            if not np.isfinite(v):
                cells.append("?")
            else:
                idx = int((v - lo) / span * (n_shades - 1))
                cells.append(_SHADES[idx])
        label = ""
        if row_labels is not None and (r == 0 or r == arr.shape[0] - 1):
            label = f"  {row_name}={row_labels[r]:.3g}"
        lines.append("".join(ch * 2 for ch in cells) + label)
    if col_labels is not None:
        lines.append(
            f"{col_name}: {col_labels[0]:.3g} (left) .. {col_labels[-1]:.3g} (right)"
        )
    lines.append(f"scale: ' '={lo:.4g} .. '@'={hi:.4g}")
    return "\n".join(lines)
