"""Aligned text tables and CSV output for the experiment harnesses."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

__all__ = ["format_table", "write_csv"]


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Floats are formatted to ``precision`` decimals; all other values via
    ``str``.  Column widths adapt to content.
    """
    str_rows = [[_render_cell(v, precision) for v in row] for row in rows]
    for r, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {r} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[k]) for k, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to a CSV file, creating parent directories as needed."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells but there are {len(headers)} headers"
                )
            writer.writerow(row)
    return out
