"""Statistics, validation helpers and terminal reporting.

* :mod:`repro.analysis.littles_law` -- L = lambda * W validators.
* :mod:`repro.analysis.stats` -- summary statistics, batch-means CIs.
* :mod:`repro.analysis.timeseries` -- warmup removal (MSER), window means.
* :mod:`repro.analysis.tables` -- aligned text tables and CSV emitters.
* :mod:`repro.analysis.ascii_plot` -- dependency-free terminal plots used by
  the figure harnesses (the environment has no matplotlib).
* :mod:`repro.analysis.svg_plot` -- dependency-free SVG line charts written
  alongside the CSVs so the reproduced figures are viewable in a browser.
"""

from repro.analysis.autocorrelation import (
    autocorrelation,
    effective_sample_size,
    integrated_autocorrelation_time,
)
from repro.analysis.littles_law import LittlesLawCheck, littles_law_check
from repro.analysis.stats import SummaryStats, batch_means_ci, jain_fairness, summarize
from repro.analysis.timeseries import mser_truncation, time_average, trim_warmup
from repro.analysis.tables import format_table, write_csv
from repro.analysis.ascii_plot import ascii_heatmap, ascii_plot
from repro.analysis.obs_format import format_metrics_table
from repro.analysis.svg_plot import svg_line_chart, write_svg

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "integrated_autocorrelation_time",
    "LittlesLawCheck",
    "littles_law_check",
    "SummaryStats",
    "batch_means_ci",
    "jain_fairness",
    "summarize",
    "mser_truncation",
    "time_average",
    "trim_warmup",
    "format_table",
    "format_metrics_table",
    "write_csv",
    "ascii_heatmap",
    "ascii_plot",
    "svg_line_chart",
    "write_svg",
]
