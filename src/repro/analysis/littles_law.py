"""Little's law (L = lambda * W) validation.

The paper derives every time metric from stationary populations via
Little's law, so the reproduction uses the same identity as a first-class
consistency check: fluid steady states must satisfy it exactly, and the
discrete-event simulator must satisfy it within sampling noise.

>>> check = littles_law_check(population=60.0, arrival_rate=1.0, mean_time=60.0)
>>> check.relative_error
0.0
>>> littles_law_check(population=66.0, arrival_rate=1.0, mean_time=60.0).within(0.05)
False
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LittlesLawCheck", "littles_law_check"]


@dataclass(frozen=True)
class LittlesLawCheck:
    """Outcome of one L = lambda * W comparison.

    Attributes
    ----------
    population:
        Observed mean number in system, ``L``.
    arrival_rate:
        Observed throughput, ``lambda``.
    mean_time:
        Observed mean time in system, ``W``.
    relative_error:
        ``|L - lambda*W| / max(L, lambda*W)`` (0 when both sides are 0).
    """

    population: float
    arrival_rate: float
    mean_time: float
    relative_error: float

    @property
    def implied_time(self) -> float:
        """``L / lambda`` -- the W that Little's law would predict."""
        if self.arrival_rate == 0:
            return float("nan")
        return self.population / self.arrival_rate

    def within(self, tolerance: float) -> bool:
        """Whether the identity holds to the given relative tolerance."""
        return self.relative_error <= tolerance


def littles_law_check(
    population: float, arrival_rate: float, mean_time: float
) -> LittlesLawCheck:
    """Compare ``population`` against ``arrival_rate * mean_time``."""
    if population < 0 or arrival_rate < 0:
        raise ValueError("population and arrival_rate must be nonnegative")
    rhs = arrival_rate * mean_time
    scale = max(abs(population), abs(rhs))
    rel = 0.0 if scale == 0 else abs(population - rhs) / scale
    return LittlesLawCheck(
        population=population,
        arrival_rate=arrival_rate,
        mean_time=mean_time,
        relative_error=rel,
    )
