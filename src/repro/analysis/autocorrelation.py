"""Autocorrelation diagnostics for simulation output.

Population samples from the simulator are strongly serially correlated
(a swarm's size moves slowly relative to the sampling interval), so the
number of *effective* observations is far below the raw count.  This
module provides the standard machinery:

* :func:`autocorrelation` -- the normalised autocorrelation function.
* :func:`integrated_autocorrelation_time` -- Sokal's windowed estimator
  ``tau = 1 + 2*sum rho_k`` with the self-consistent window
  ``W = c * tau`` (the first ``W >= c*tau(W)``).
* :func:`effective_sample_size` -- ``n / tau``.

Used by the validation tooling to justify the tolerances the sim-vs-fluid
comparisons run at.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "autocorrelation",
    "integrated_autocorrelation_time",
    "effective_sample_size",
]


def autocorrelation(series: Sequence[float], max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation ``rho_k`` for lags ``0..max_lag``.

    Uses the FFT-free direct estimator with the (biased, standard)
    ``1/n`` normalisation; ``rho_0`` is always 1.  Constant series have no
    correlation structure and return ``[1, 0, 0, ...]``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("series must be one-dimensional with >= 2 points")
    n = x.size
    if max_lag is None:
        max_lag = min(n - 1, n // 2)
    if not 0 < max_lag < n:
        raise ValueError(f"max_lag must be in 1..{n - 1}, got {max_lag}")
    x = x - x.mean()
    var = float(np.dot(x, x)) / n
    if var == 0.0:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    rho = np.empty(max_lag + 1)
    rho[0] = 1.0
    for k in range(1, max_lag + 1):
        rho[k] = float(np.dot(x[:-k], x[k:])) / (n * var)
    return rho


def integrated_autocorrelation_time(
    series: Sequence[float], *, window_factor: float = 5.0
) -> float:
    """Sokal's self-consistent windowed IAT estimate.

    ``tau(W) = 1 + 2*sum_{k=1..W} rho_k``; the reported value uses the
    smallest ``W`` with ``W >= window_factor * tau(W)``.  Returns at least
    1 (i.i.d. data).
    """
    if window_factor <= 0:
        raise ValueError(f"window_factor must be positive, got {window_factor}")
    rho = autocorrelation(series)
    tau = 1.0
    for w in range(1, rho.size):
        tau = 1.0 + 2.0 * float(np.sum(rho[1 : w + 1]))
        if w >= window_factor * tau:
            break
    return max(1.0, tau)


def effective_sample_size(series: Sequence[float]) -> float:
    """``n / tau`` -- the equivalent number of independent observations."""
    x = np.asarray(series, dtype=float)
    return x.size / integrated_autocorrelation_time(x)
