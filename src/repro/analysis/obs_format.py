"""Render a :class:`repro.obs.MetricsRegistry` as aligned text tables.

This is what ``repro run all --profile`` prints on stderr: one table per
metric kind (counters, gauges, histograms) plus a short derived section
(events/sec, RHS evals/sec and similar rates that need two raw metrics).
Everything is plain text via :func:`repro.analysis.tables.format_table`, so
the output pastes cleanly into issues and commit messages.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.analysis.tables import format_table
from repro.obs import MetricsRegistry

__all__ = ["format_metrics_table"]


def _fmt_count(value: float) -> object:
    """Integers print as integers; everything else defers to the table."""
    return int(value) if float(value).is_integer() else value


def _derived_rows(reg: MetricsRegistry) -> list[list[object]]:
    """Rates that combine two raw metrics; only rows whose inputs exist."""
    rows: list[list[object]] = []
    sim_events = reg.counters.get("sim.events")
    sim_secs = reg.histograms.get("sim.run_until_seconds")
    if sim_events and sim_secs is not None and sim_secs.total > 0:
        rows.append(["sim.events_per_sec", sim_events / sim_secs.total])
    rhs_evals = reg.counters.get("ode.rhs_evals")
    driver_secs = reg.gauges.get("runner.driver_seconds")
    if rhs_evals and driver_secs:
        rows.append(["ode.rhs_evals_per_driver_sec", rhs_evals / driver_secs])
    hits = reg.counters.get("runner.cache.hits", 0.0)
    misses = reg.counters.get("runner.cache.misses", 0.0)
    if hits + misses > 0:
        rows.append(["runner.cache.hit_rate", hits / (hits + misses)])
    failures = reg.counters.get("runner.failures", 0.0)
    experiments = reg.counters.get("runner.experiments", 0.0)
    if failures and experiments:
        rows.append(["runner.failure_rate", failures / experiments])
    return rows


def format_metrics_table(
    registry: MetricsRegistry | Mapping, *, title: str = "metrics"
) -> str:
    """Render the registry's counters, gauges and histograms as text tables.

    Accepts a live registry or its :meth:`~repro.obs.MetricsRegistry.to_dict`
    snapshot.  Sections with no entries are omitted; an entirely empty
    registry renders as a one-line placeholder.
    """
    if isinstance(registry, Mapping):
        registry = MetricsRegistry.from_dict(registry)

    sections: list[str] = []
    if registry.counters:
        sections.append(
            format_table(
                ["counter", "total"],
                [
                    [name, _fmt_count(value)]
                    for name, value in sorted(registry.counters.items())
                ],
                title=f"{title}: counters",
            )
        )
    if registry.gauges:
        sections.append(
            format_table(
                ["gauge", "value"],
                [[name, value] for name, value in sorted(registry.gauges.items())],
                title=f"{title}: gauges",
            )
        )
    if registry.histograms:
        sections.append(
            format_table(
                ["histogram", "count", "mean", "min", "max", "total"],
                [
                    [
                        name,
                        h.count,
                        h.mean,
                        h.min if h.count else math.nan,
                        h.max if h.count else math.nan,
                        h.total,
                    ]
                    for name, h in sorted(registry.histograms.items())
                ],
                precision=6,
                title=f"{title}: histograms (timers in seconds)",
            )
        )
    derived = _derived_rows(registry)
    if derived:
        sections.append(
            format_table(["derived", "value"], derived, title=f"{title}: derived")
        )
    if not sections:
        return f"{title}: (no metrics recorded)"
    return "\n\n".join(sections)
