"""Summary statistics and batch-means confidence intervals.

Simulation outputs are autocorrelated (peers interact through shared
torrents), so naive i.i.d. confidence intervals understate the error.  The
standard remedy used here is the *batch means* method: split the
steady-state sample stream into ``n_batches`` contiguous batches, treat the
batch averages as approximately independent, and apply a Student-t interval
to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = ["SummaryStats", "summarize", "batch_means_ci", "jain_fairness"]


def jain_fairness(values: Sequence[float], weights: Sequence[float] | None = None) -> float:
    """Jain's fairness index, optionally population-weighted.

    ``J = (sum w_i x_i)^2 / (sum w_i * sum w_i x_i^2)`` lies in
    ``(0, 1]``; 1 means perfectly equal allocations.  Entries with zero
    weight or non-finite value are ignored.
    """
    x = np.asarray(values, dtype=float)
    w = np.ones_like(x) if weights is None else np.asarray(weights, dtype=float)
    if x.shape != w.shape:
        raise ValueError("values and weights must have equal length")
    if np.any(w < 0):
        raise ValueError("weights must be nonnegative")
    mask = (w > 0) & np.isfinite(x)
    x, w = x[mask], w[mask]
    if x.size == 0:
        raise ValueError("no weighted finite values to assess")
    num = float(np.sum(w * x)) ** 2
    den = float(np.sum(w)) * float(np.sum(w * x**2))
    if den == 0.0:
        return 1.0  # all allocations are zero: trivially equal
    return num / den


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @property
    def sem(self) -> float:
        """Standard error of the mean (i.i.d. assumption)."""
        if self.n < 2:
            return float("nan")
        return self.std / np.sqrt(self.n)


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        n=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        median=float(np.median(arr)),
    )


def batch_means_ci(
    values: Sequence[float],
    *,
    n_batches: int = 10,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """Batch-means confidence interval ``(mean, lo, hi)``.

    Requires at least ``2 * n_batches`` observations so each batch holds two
    or more points; trailing observations that do not fill a whole batch are
    folded into the last one.
    """
    arr = np.asarray(values, dtype=float)
    if n_batches < 2:
        raise ValueError(f"n_batches must be >= 2, got {n_batches}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if arr.size < 2 * n_batches:
        raise ValueError(
            f"need at least {2 * n_batches} observations for {n_batches} batches, "
            f"got {arr.size}"
        )
    batch_size = arr.size // n_batches
    means = np.empty(n_batches)
    for b in range(n_batches):
        start = b * batch_size
        stop = arr.size if b == n_batches - 1 else start + batch_size
        means[b] = float(np.mean(arr[start:stop]))
    grand = float(np.mean(means))
    sem = float(np.std(means, ddof=1)) / np.sqrt(n_batches)
    half = float(sps.t.ppf(0.5 + confidence / 2, df=n_batches - 1)) * sem
    return grand, grand - half, grand + half
