"""Dependency-free SVG charts for the figure harnesses.

The offline environment has no matplotlib; ASCII plots serve the terminal,
and this module writes proper vector figures to disk so the reproduced
curves can be viewed in a browser.  Deliberately small: line charts with
markers, legends and tick labels -- enough for every figure in the paper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = ["svg_line_chart", "svg_heatmap", "write_svg"]

_COLORS = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
)

_MARKERS = ("circle", "square", "diamond", "triangle")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** np.floor(np.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    start = np.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 0.5 * step:
        if t >= lo - 0.5 * step:
            ticks.append(float(t))
        t += step
    return ticks


def _marker_svg(kind: str, x: float, y: float, color: str) -> str:
    r = 3.2
    if kind == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{color}"/>'
    if kind == "square":
        return (
            f'<rect x="{x - r:.1f}" y="{y - r:.1f}" width="{2 * r:.1f}" '
            f'height="{2 * r:.1f}" fill="{color}"/>'
        )
    if kind == "diamond":
        pts = f"{x},{y - r - 1} {x + r + 1},{y} {x},{y + r + 1} {x - r - 1},{y}"
        return f'<polygon points="{pts}" fill="{color}"/>'
    # triangle
    pts = f"{x},{y - r - 1} {x + r + 1},{y + r} {x - r - 1},{y + r}"
    return f'<polygon points="{pts}" fill="{color}"/>'


def svg_line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 420,
) -> str:
    """Render ``name -> (xs, ys)`` series as an SVG line chart string."""
    if not series:
        raise ValueError("need at least one series")
    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"series {name!r}: x and y lengths differ")
        mask = np.isfinite(x) & np.isfinite(y)
        if mask.any():
            cleaned[name] = (x[mask], y[mask])
    if not cleaned:
        raise ValueError("no finite data points to plot")

    all_x = np.concatenate([v[0] for v in cleaned.values()])
    all_y = np.concatenate([v[1] for v in cleaned.values()])
    x_ticks = _nice_ticks(float(all_x.min()), float(all_x.max()))
    y_ticks = _nice_ticks(float(all_y.min()), float(all_y.max()))
    x_lo, x_hi = x_ticks[0], x_ticks[-1]
    y_lo, y_hi = y_ticks[0], y_ticks[-1]
    if x_hi == x_lo:
        x_hi += 1.0
    if y_hi == y_lo:
        y_hi += 1.0

    ml, mr, mt, mb = 64, 16, 40, 52  # margins
    pw, ph = width - ml - mr, height - mt - mb

    def sx(x: float) -> float:
        return ml + (x - x_lo) / (x_hi - x_lo) * pw

    def sy(y: float) -> float:
        return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14" font-weight="bold">{title}</text>',
    ]
    # Grid + ticks.
    for t in x_ticks:
        x = sx(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{mt}" x2="{x:.1f}" y2="{mt + ph}" '
            'stroke="#e0e0e0" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{mt + ph + 16}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="11">{t:g}</text>'
        )
    for t in y_ticks:
        y = sy(t)
        parts.append(
            f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}" '
            'stroke="#e0e0e0" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{ml - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="11">{t:g}</text>'
        )
    # Axes.
    parts.append(
        f'<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" '
        'stroke="#444" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{ml + pw / 2}" y="{height - 14}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12">{xlabel}</text>'
    )
    parts.append(
        f'<text x="16" y="{mt + ph / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 16 {mt + ph / 2})">{ylabel}</text>'
    )
    # Series.
    for k, (name, (x, y)) in enumerate(cleaned.items()):
        color = _COLORS[k % len(_COLORS)]
        marker = _MARKERS[k % len(_MARKERS)]
        order = np.argsort(x)
        pts = " ".join(f"{sx(xv):.1f},{sy(yv):.1f}" for xv, yv in zip(x[order], y[order]))
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.8"/>'
        )
        # Thin the markers on dense series.
        stride = max(1, x.size // 25)
        for xv, yv in zip(x[order][::stride], y[order][::stride]):
            parts.append(_marker_svg(marker, sx(xv), sy(yv), color))
        # Legend entry.
        ly = mt + 8 + 16 * k
        parts.append(
            f'<line x1="{ml + pw - 130}" y1="{ly}" x2="{ml + pw - 108}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{ml + pw - 102}" y="{ly + 4}" font-family="sans-serif" '
            f'font-size="11">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _heat_color(frac: float) -> str:
    """Light-yellow -> red colormap for a value fraction in [0, 1]."""
    frac = min(1.0, max(0.0, frac))
    r = 255
    g = int(245 - 190 * frac)
    b = int(200 - 170 * frac)
    return f"rgb({r},{g},{b})"


def svg_heatmap(
    grid,
    *,
    row_labels: Sequence[float] | None = None,
    col_labels: Sequence[float] | None = None,
    title: str = "",
    row_name: str = "row",
    col_name: str = "col",
    cell: int = 34,
) -> str:
    """Render a 2-D array as an SVG heat map with value annotations."""
    arr = np.asarray(grid, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError("grid must be a non-empty 2-D array")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ValueError("grid has no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    n_rows, n_cols = arr.shape
    ml, mt = 70, 44
    width = ml + n_cols * cell + 16
    height = mt + n_rows * cell + 40
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14" font-weight="bold">{title}</text>',
    ]
    for r in range(n_rows):
        for c in range(n_cols):
            v = arr[r, c]
            x, y = ml + c * cell, mt + r * cell
            if np.isfinite(v):
                color = _heat_color((v - lo) / span)
                label = f"{v:.3g}"
            else:
                color, label = "#dddddd", "--"
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'fill="{color}" stroke="white"/>'
            )
            parts.append(
                f'<text x="{x + cell / 2}" y="{y + cell / 2 + 3}" '
                f'text-anchor="middle" font-family="sans-serif" '
                f'font-size="9">{label}</text>'
            )
    if row_labels is not None:
        for r, lab in enumerate(row_labels):
            parts.append(
                f'<text x="{ml - 6}" y="{mt + r * cell + cell / 2 + 3}" '
                f'text-anchor="end" font-family="sans-serif" font-size="10">'
                f"{row_name}={lab:g}</text>"
            )
    if col_labels is not None:
        for c, lab in enumerate(col_labels):
            parts.append(
                f'<text x="{ml + c * cell + cell / 2}" y="{mt + n_rows * cell + 14}" '
                f'text-anchor="middle" font-family="sans-serif" font-size="10">'
                f"{lab:g}</text>"
            )
        parts.append(
            f'<text x="{ml + n_cols * cell / 2}" y="{mt + n_rows * cell + 30}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="11">'
            f"{col_name}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    path: str | Path,
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    **kwargs,
) -> Path:
    """Render a line chart and write it to ``path`` (parents created)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(svg_line_chart(series, **kwargs))
    return out
