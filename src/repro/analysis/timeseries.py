"""Warmup handling and time-weighted averaging for simulation output.

The simulator starts from an empty system, so early observations are biased
low.  :func:`mser_truncation` implements the MSER (Marginal Standard Error
Rule) heuristic -- pick the truncation point that minimises the standard
error of the remaining sample -- and :func:`time_average` computes
time-weighted means of piecewise-constant population processes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["mser_truncation", "trim_warmup", "time_average"]


def mser_truncation(values: Sequence[float], *, max_fraction: float = 0.5) -> int:
    """MSER warmup truncation index.

    Evaluates, for every candidate truncation ``d`` up to
    ``max_fraction * n``, the squared marginal standard error
    ``var(values[d:]) / (n - d)`` and returns the minimising ``d``.
    """
    arr = np.asarray(values, dtype=float)
    n = arr.size
    if n < 4:
        return 0
    if not 0 < max_fraction <= 0.9:
        raise ValueError(f"max_fraction must be in (0, 0.9], got {max_fraction}")
    d_max = int(n * max_fraction)
    # Suffix sums let every candidate be scored in O(1).
    suffix_sum = np.cumsum(arr[::-1])[::-1]
    suffix_sq = np.cumsum((arr**2)[::-1])[::-1]
    best_d, best_score = 0, np.inf
    for d in range(d_max + 1):
        m = n - d
        if m < 2:
            break
        mean = suffix_sum[d] / m
        var = suffix_sq[d] / m - mean**2
        score = max(var, 0.0) / m
        if score < best_score:
            best_score = score
            best_d = d
    return best_d


def trim_warmup(values: Sequence[float], *, max_fraction: float = 0.5) -> np.ndarray:
    """Return the sample with its MSER-detected warmup removed."""
    arr = np.asarray(values, dtype=float)
    return arr[mser_truncation(arr, max_fraction=max_fraction) :]


def time_average(
    times: Sequence[float],
    values: Sequence[float],
    *,
    t_start: float | None = None,
    t_end: float | None = None,
) -> float:
    """Time-weighted mean of a piecewise-constant right-continuous process.

    ``values[k]`` is the process level on ``[times[k], times[k+1])``; the
    final level extends to ``t_end`` (default: the last event time, in which
    case the final level gets zero weight).  ``t_start`` restricts the
    window, e.g. to discard warmup.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.size != v.size or t.size == 0:
        raise ValueError("times and values must be equal-length and non-empty")
    if np.any(np.diff(t) < 0):
        raise ValueError("times must be nondecreasing")
    lo = t[0] if t_start is None else float(t_start)
    hi = t[-1] if t_end is None else float(t_end)
    if hi <= lo:
        raise ValueError(f"empty averaging window [{lo}, {hi}]")
    edges = np.concatenate([t, [hi]])
    starts = np.clip(edges[:-1], lo, hi)
    stops = np.clip(edges[1:], lo, hi)
    weights = stops - starts
    total = float(np.sum(weights))
    if total <= 0:
        raise ValueError("averaging window does not overlap the sample")
    return float(np.sum(weights * v) / total)
